"""Tests for the machine models: NoC, caches, cost model, platforms."""

import numpy as np
import pytest

from repro.machine import (
    CacheHierarchy,
    CacheLevel,
    MachineModel,
    MeshNoC,
    estimate_time,
    tilegx36,
    xeon_x7560,
)
from repro.parallel.engine import ExecutionTrace, SuperstepRecord


class TestMeshNoC:
    def test_coords_row_major(self):
        noc = MeshNoC(6, 6)
        assert noc.coords(0) == (0, 0)
        assert noc.coords(7) == (1, 1)
        assert noc.coords(35) == (5, 5)

    def test_coords_out_of_range(self):
        with pytest.raises(ValueError):
            MeshNoC(2, 2).coords(4)

    def test_hops_manhattan(self):
        noc = MeshNoC(6, 6)
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 35) == 10
        assert noc.hops(0, 5) == 5

    def test_hops_symmetric(self):
        noc = MeshNoC(4, 4)
        for a in range(16):
            for b in range(16):
                assert noc.hops(a, b) == noc.hops(b, a)

    def test_latency_monotone_in_hops(self):
        noc = MeshNoC(6, 6)
        assert noc.latency_ns(0, 1) < noc.latency_ns(0, 35)

    def test_mean_hops_matches_bruteforce(self):
        noc = MeshNoC(4, 3)
        pairs = [(a, b) for a in range(12) for b in range(12)]
        brute = np.mean([noc.hops(a, b) for a, b in pairs])
        assert noc.mean_hops() == pytest.approx(brute)

    def test_remote_rmw_exceeds_round_trip(self):
        noc = MeshNoC(6, 6)
        assert noc.remote_rmw_ns() > 2 * noc.mean_latency_ns()

    def test_bisection(self):
        assert MeshNoC(6, 6).bisection_links() == 6

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MeshNoC(0, 4)


class TestCacheHierarchy:
    def _hier(self):
        return CacheHierarchy(
            levels=(CacheLevel("L1", 1024, 1.0), CacheLevel("L2", 16 * 1024, 10.0)),
            memory_latency_ns=100.0,
        )

    def test_tiny_working_set_hits_l1(self):
        assert self._hier().avg_access_ns(512) == pytest.approx(1.0)

    def test_huge_working_set_near_memory(self):
        assert self._hier().avg_access_ns(10**9) == pytest.approx(100.0, rel=0.01)

    def test_monotone_in_working_set(self):
        h = self._hier()
        sizes = [512, 2048, 16 * 1024, 10**6]
        vals = [h.avg_access_ns(s) for s in sizes]
        assert vals == sorted(vals)

    def test_partial_coverage_blend(self):
        h = self._hier()
        # 2048-byte WS: half in L1 (1ns), half in L2 (10ns)
        assert h.avg_access_ns(2048) == pytest.approx(5.5)

    def test_misordered_levels_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                levels=(CacheLevel("L2", 2048, 5.0), CacheLevel("L1", 1024, 1.0)),
                memory_latency_ns=50.0,
            )

    def test_nonpositive_ws_rejected(self):
        with pytest.raises(ValueError):
            self._hier().avg_access_ns(0)


def _trace(p, work_per_thread, atomics=0, bins=1, reads=0, barriers=2, serial=0.0):
    t = ExecutionTrace(num_threads=p, serial_work=serial)
    r = SuperstepRecord(work_per_thread=np.asarray(work_per_thread, dtype=float))
    # treat each thread's load as one indivisible item so the dynamic
    # scheduling span equals the static busiest-thread bound in these tests
    r.max_item_work = float(np.max(work_per_thread)) if len(work_per_thread) else 0.0
    r.atomic_ops = atomics
    r.distinct_bins = bins
    r.shared_reads = reads
    r.barriers = barriers
    t.add(r)
    return t


class TestEstimateTime:
    def _machine(self, **kw):
        base = dict(
            name="toy", num_cores=8, freq_ghz=1.0, work_ns=10.0,
            mem_bw_work_ns=0.0, atomic_ns=100.0, atomic_ping_ns=0.0,
            shared_read_local_ns=1.0, shared_read_remote_ns=50.0,
            barrier_base_ns=1000.0, barrier_per_thread_ns=0.0,
        )
        base.update(kw)
        return MachineModel(**base)

    def test_work_is_critical_path(self):
        m = self._machine()
        bd = estimate_time(_trace(2, [100, 50], barriers=0), m)
        assert bd.work_s == pytest.approx(100 * 10 * 1e-9)

    def test_bandwidth_floor_binds(self):
        m = self._machine(mem_bw_work_ns=20.0)
        bd = estimate_time(_trace(2, [100, 100], barriers=0), m)
        assert bd.work_s == pytest.approx(200 * 20 * 1e-9)

    def test_atomic_serialization_on_one_bin(self):
        m = self._machine()
        bd = estimate_time(_trace(4, [0, 0, 0, 0], atomics=100, bins=1, barriers=0), m)
        # one counter: ops serialize fully
        assert bd.atomic_s == pytest.approx(100 * 100 * 1e-9)

    def test_atomic_parallel_over_many_bins(self):
        m = self._machine()
        bd = estimate_time(_trace(4, [0, 0, 0, 0], atomics=100, bins=100, barriers=0), m)
        assert bd.atomic_s == pytest.approx(100 / 4 * 100 * 1e-9)

    def test_atomic_ping_grows_with_threads(self):
        m = self._machine(atomic_ping_ns=1000.0)
        lo = estimate_time(_trace(2, [0, 0], atomics=10, bins=1, barriers=0), m)
        hi = estimate_time(_trace(8, [0] * 8, atomics=10, bins=1, barriers=0), m)
        assert hi.atomic_s > lo.atomic_s

    def test_shared_reads_local_vs_remote(self):
        m = self._machine()
        solo = estimate_time(_trace(1, [0], reads=100, bins=50, barriers=0), m)
        multi = estimate_time(_trace(4, [0] * 4, reads=100, bins=50, barriers=0), m)
        assert solo.shared_read_s == pytest.approx(100 * 1.0 * 1e-9)
        assert multi.shared_read_s > solo.shared_read_s

    def test_barrier_cost(self):
        m = self._machine(barrier_per_thread_ns=100.0)
        bd = estimate_time(_trace(4, [0] * 4, barriers=3), m)
        assert bd.barrier_s == pytest.approx(3 * (1000 + 400) * 1e-9)

    def test_serial_section(self):
        m = self._machine()
        bd = estimate_time(_trace(2, [0, 0], barriers=0, serial=500), m)
        assert bd.serial_s == pytest.approx(500 * 10 * 1e-9)

    def test_coherence_floor_activates_across_sockets(self):
        m = self._machine(cores_per_socket=2, coherence_floor_ns=100.0)
        within = estimate_time(_trace(2, [0, 0], atomics=10, reads=90, bins=100, barriers=0), m)
        across = estimate_time(_trace(4, [0] * 4, atomics=10, reads=90, bins=100, barriers=0), m)
        floor_s = 100 * 100 * 1e-9
        assert across.atomic_s + across.shared_read_s >= floor_s - 1e-15
        assert within.atomic_s + within.shared_read_s < floor_s

    def test_too_many_threads_rejected(self):
        m = self._machine(num_cores=2)
        with pytest.raises(ValueError, match="cores"):
            estimate_time(_trace(4, [0] * 4), m)

    def test_total_is_sum(self):
        m = self._machine()
        bd = estimate_time(_trace(2, [10, 5], atomics=5, reads=5, bins=2, serial=10), m)
        assert bd.total_s == pytest.approx(
            bd.work_s + bd.atomic_s + bd.shared_read_s + bd.barrier_s + bd.serial_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._machine(num_cores=0)
        with pytest.raises(ValueError):
            self._machine(work_ns=0)
        with pytest.raises(ValueError):
            self._machine(atomic_ping_ns=-1)


class TestPlatforms:
    def test_xeon_shape(self):
        m = xeon_x7560()
        assert m.num_cores == 32
        assert m.cores_per_socket == 8
        assert m.coherence_floor_ns > 0

    def test_tilera_shape(self):
        m = tilegx36()
        assert m.num_cores == 36

    def test_tilera_slower_per_core_than_xeon(self):
        assert tilegx36().work_ns > 2 * xeon_x7560().work_ns

    def test_tilera_cheaper_synchronization(self):
        til, x86 = tilegx36(), xeon_x7560()
        assert til.atomic_ns < x86.atomic_ns
        assert til.atomic_ping_ns < x86.atomic_ping_ns
        assert til.shared_read_remote_ns < x86.shared_read_remote_ns

    def test_tilera_atomic_derived_from_noc(self):
        from repro.machine.tilera import TILERA_NOC

        assert tilegx36().atomic_ns == pytest.approx(TILERA_NOC.remote_rmw_ns(core_overhead_ns=6.0))
