"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Greedy-FF" in out and "vff" in out

    def test_community_detection(self):
        out = _run("community_detection.py", "cnr", "0.08")
        assert "serial Louvain" in out
        assert "end-to-end savings" in out

    def test_machine_comparison(self):
        out = _run("machine_comparison.py", "cnr", "0.08")
        assert "tilegx36" in out and "xeon-x7560" in out
        assert "cost breakdown" in out

    def test_sparse_solver(self):
        out = _run("sparse_solver.py", "cnr", "0.08")
        assert "Jacobi" in out and "balanced coloring" in out

    def test_custom_graphs(self):
        out = _run("custom_graphs.py")
        assert "MatrixMarket round trip OK" in out
        assert "distance-2" in out
