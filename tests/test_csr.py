"""Tests for the CSRGraph structure."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_arrays, path_graph


class TestStructure:
    def test_counts(self, path10):
        assert path10.num_vertices == 10
        assert path10.num_edges == 9

    def test_degrees_path(self, path10):
        deg = path10.degrees
        assert deg[0] == deg[9] == 1
        assert all(deg[1:9] == 2)

    def test_max_degree(self, star8):
        assert star8.max_degree == 7

    def test_degree_single_vertex(self, star8):
        assert star8.degree(0) == 7
        assert star8.degree(3) == 1

    def test_neighbors_sorted(self, k5):
        for v in range(5):
            nbrs = k5.neighbors(v)
            assert np.array_equal(nbrs, np.sort(nbrs))
            assert v not in nbrs

    def test_has_edge(self, cycle5):
        assert cycle5.has_edge(0, 1)
        assert cycle5.has_edge(0, 4)
        assert not cycle5.has_edge(0, 2)

    def test_edges_iterates_each_once(self, k5):
        edges = list(k5.edges())
        assert len(edges) == 10
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 10

    def test_edge_arrays_match_edges(self, petersen):
        u, v = petersen.edge_arrays()
        assert len(u) == petersen.num_edges == 15
        assert set(zip(u.tolist(), v.tolist())) == set(petersen.edges())

    def test_empty_graph(self):
        g = from_edge_arrays(np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CSRGraph(np.array([0, 1]), np.array([0]))

    def test_asymmetric_rejected(self):
        # edge 0->1 without 1->0
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1, 1]), np.array([1]))

    def test_unsorted_row_rejected(self):
        # vertex 0 adjacent to 2 then 1 (unsorted)
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices)

    def test_duplicate_neighbor_rejected(self):
        indptr = np.array([0, 2, 4])
        indices = np.array([1, 1, 0, 0])
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRGraph(indptr, indices)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(np.array([0, 1, 2]), np.array([5, 0]))

    def test_indptr_endpoint_mismatch(self):
        with pytest.raises(ValueError, match="endpoints"):
            CSRGraph(np.array([0, 3]), np.array([1]))

    def test_validate_false_skips_checks(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]), validate=False)
        assert g.num_vertices == 1  # invalid but constructed


class TestConversion:
    def test_to_scipy_roundtrip(self, petersen):
        mat = petersen.to_scipy_sparse()
        assert mat.shape == (10, 10)
        assert mat.nnz == 30
        from repro.graph import from_scipy_sparse

        back = from_scipy_sparse(mat)
        assert back == petersen

    def test_subgraph_induced(self, k5):
        sub = k5.subgraph(np.array([0, 2, 4]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # induced triangle

    def test_subgraph_relabels_in_order(self, path10):
        sub = path10.subgraph(np.array([3, 4, 5]))
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_subgraph_duplicate_vertices_rejected(self, path10):
        with pytest.raises(ValueError, match="unique"):
            path10.subgraph(np.array([1, 1]))

    def test_equality(self):
        a = path_graph(5)
        b = path_graph(5)
        c = path_graph(6)
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_hashable(self):
        assert isinstance(hash(path_graph(4)), int)

    def test_hash_consistent_with_eq(self):
        assert hash(path_graph(5)) == hash(path_graph(5))
        assert hash(path_graph(5)) != hash(path_graph(6))

    def test_hash_sees_past_256_byte_prefix(self):
        # Two graphs sharing n, m, and the first 256 bytes (= 32 int64
        # entries) of `indices` but differing later must hash apart: a
        # long path vs the same path with its last edge rewired.
        n = 200
        a = path_graph(n)
        edges = [(i, i + 1) for i in range(n - 1)]
        edges[-1] = (n - 3, n - 1)  # same count, different far edge
        b = from_edge_arrays(
            np.array([u for u, _ in edges], dtype=np.int64),
            np.array([v for _, v in edges], dtype=np.int64),
            num_vertices=n,
        )
        assert np.array_equal(a.indices[:32], b.indices[:32])
        assert a != b
        assert hash(a) != hash(b)

    def test_fingerprint_full_content_and_cached(self):
        a = path_graph(50)
        fp = a.fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0  # hex sha256
        assert a.fingerprint() is fp  # cached
        assert path_graph(50).fingerprint() == fp  # pure content
        assert path_graph(51).fingerprint() != fp
