"""Tests for the zero-copy shared-memory execution substrate.

Covers the PR-6 acceptance criteria: shm/legacy bit-parity across every
mp variant, warm-pool reuse across consecutive jobs, segment cleanup
after injected worker kills, the out-of-core store round-trip, and an
mmap-backed graph coloring end-to-end through ``execute()`` with a
result cache smaller than the graph.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.coloring import assert_proper
from repro.graph import erdos_renyi_graph, load_graph, load_graph_file, save_graph
from repro.graph.store import is_graph_store
from repro.obs import Recorder
from repro.parallel.mp import mp_greedy_ff, resolve_transport
from repro.run import RunConfig, execute
from repro.shm import (
    SharedColors,
    SharedGraph,
    attach_colors,
    attach_graph,
    pick_context,
    shm_available,
    warm_pool,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable")


def _segment_names() -> set[str]:
    """Names of this test run's live /dev/shm segments (Linux only)."""
    return {os.path.basename(p) for p in glob.glob("/dev/shm/psm_*")}


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
class TestSegments:
    def test_graph_round_trip(self, small_cnr):
        shared = SharedGraph.for_graph(small_cnr)
        assert shared is SharedGraph.for_graph(small_cnr)  # cached
        back = attach_graph(shared.spec)
        assert np.array_equal(back.indptr, small_cnr.indptr)
        assert np.array_equal(back.indices, small_cnr.indices)

    def test_mmap_graph_ships_paths_not_bytes(self, small_cnr, tmp_path):
        save_graph(small_cnr, tmp_path / "g.csrg")
        g = load_graph(tmp_path / "g.csrg")
        shared = SharedGraph.for_graph(g)
        assert shared.spec[0] == "mmap"
        assert shared.nbytes == 0  # nothing copied anywhere
        back = attach_graph(shared.spec)
        assert np.array_equal(back.indices, g.indices)

    def test_colors_views_and_cleanup(self):
        sc = SharedColors(100)
        assert sc.snapshots.shape == (2, 100)
        assert sc.work.shape == (100,)
        sc.snapshots[0].fill(7)
        snapshots, work = attach_colors(sc.spec)
        assert int(snapshots[0][0]) == 7
        name = sc.spec[1]
        sc.close()
        sc.close()  # idempotent
        assert name not in _segment_names()


# ----------------------------------------------------------------------
# warm pool
# ----------------------------------------------------------------------
class TestWarmPool:
    def test_reuse_across_jobs(self, small_cnr):
        pool = warm_pool()
        pool.ensure(2)
        before = pool.stats()
        a = mp_greedy_ff(small_cnr, num_workers=2, shm=True)
        b = mp_greedy_ff(small_cnr, num_workers=2, shm=True)
        after = pool.stats()
        assert a.meta["pool_reused"] and b.meta["pool_reused"]
        assert after["cold_starts"] == before["cold_starts"]
        assert after["reused"] == before["reused"] + 2
        assert np.array_equal(a.colors, b.colors)

    def test_reuse_across_execute_calls(self, small_cnr):
        config = RunConfig(strategy="greedy-ff", mode="mp", threads=2, seed=4)
        first = execute(small_cnr, config)
        second = execute(small_cnr, config)
        assert second.coloring.meta["pool_reused"]
        assert np.array_equal(first.coloring.colors, second.coloring.colors)

    def test_grow_then_reuse(self, small_cnr):
        from repro.shm import shutdown_warm_pool

        shutdown_warm_pool()  # fresh singleton: earlier tests may have grown it
        pool = warm_pool()
        pool.ensure(2)
        wide = mp_greedy_ff(small_cnr, num_workers=3, shm=True)
        narrow = mp_greedy_ff(small_cnr, num_workers=2, shm=True)
        assert not wide.meta["pool_reused"]  # grew: counted as cold
        assert narrow.meta["pool_reused"]  # narrower job rides the wide pool
        assert_proper(small_cnr, narrow)

    def test_pick_context_prefers_fork_else_spawn(self, monkeypatch):
        import multiprocessing as mp

        expected = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        monkeypatch.delenv("REPRO_MP_CONTEXT", raising=False)
        assert pick_context().get_start_method() == expected
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert pick_context().get_start_method() == "spawn"
        with pytest.raises(ValueError):
            pick_context("not-a-method")


# ----------------------------------------------------------------------
# transport parity
# ----------------------------------------------------------------------
class TestTransportParity:
    @pytest.mark.parametrize("partition", ["block", "random", "bfs"])
    def test_bit_identical_across_partitions(self, small_cnr, partition):
        a = mp_greedy_ff(small_cnr, num_workers=3, partition=partition,
                         seed=11, shm=True)
        b = mp_greedy_ff(small_cnr, num_workers=3, partition=partition,
                         seed=11, shm=False)
        assert a.meta["transport"] == "shm"
        assert b.meta["transport"] == "pickle"
        assert np.array_equal(a.colors, b.colors)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_bit_identical_across_backends(self, small_cnr, backend):
        a = mp_greedy_ff(small_cnr, num_workers=2, backend=backend, shm=True)
        b = mp_greedy_ff(small_cnr, num_workers=2, backend=backend, shm=False)
        assert np.array_equal(a.colors, b.colors)

    def test_bit_identical_under_faults(self, small_cnr):
        plan = "kill@r0.w0;corrupt@r0.w2;stale@r1.w1"
        a = mp_greedy_ff(small_cnr, num_workers=3, seed=1, shm=True,
                         fault_plan=plan, round_timeout=5.0)
        b = mp_greedy_ff(small_cnr, num_workers=3, seed=1, shm=False,
                         fault_plan=plan, round_timeout=5.0)
        assert a.meta["faults"]["injected"] == 3
        assert np.array_equal(a.colors, b.colors)
        assert_proper(small_cnr, a)

    def test_shm_ships_fewer_bytes(self, small_cnr):
        a = mp_greedy_ff(small_cnr, num_workers=3, seed=2, shm=True)
        b = mp_greedy_ff(small_cnr, num_workers=3, seed=2, shm=False)
        assert a.meta["bytes_to_workers"] * 5 < b.meta["bytes_to_workers"]

    def test_recorder_counts_bytes_and_pool_events(self, small_cnr):
        rec = Recorder()
        mp_greedy_ff(small_cnr, num_workers=2, shm=True, recorder=rec)
        counters = rec.counters
        assert counters.get("mp.bytes_to_workers", 0) > 0
        assert (counters.get("shm.pool.reused", 0)
                + counters.get("shm.pool.cold_start", 0)) == 1
        kinds = {e["kind"] for e in rec.events}
        assert "mp_pool" in kinds and "mp_round" in kinds

    def test_env_transport_override(self, small_cnr, monkeypatch):
        monkeypatch.setenv("REPRO_MP_SHM", "0")
        assert resolve_transport() == "pickle"
        c = mp_greedy_ff(small_cnr, num_workers=2)
        assert c.meta["transport"] == "pickle"
        monkeypatch.setenv("REPRO_MP_SHM", "banana")
        with pytest.raises(ValueError):
            resolve_transport()


# ----------------------------------------------------------------------
# cleanup under faults
# ----------------------------------------------------------------------
class TestCleanup:
    def test_no_leaked_segments_after_kills(self, small_cnr):
        before = _segment_names()
        c = mp_greedy_ff(small_cnr, num_workers=2, seed=0, shm=True,
                         fault_plan="kill@r0.w0;kill@r1.w1",
                         round_timeout=5.0)
        assert c.meta["faults"]["injected"] >= 1
        assert_proper(small_cnr, c)
        # per-job colors segment is gone; only the cached per-graph CSR
        # segment (parent-owned, freed with the graph) may remain
        leaked = _segment_names() - before
        graph_seg = small_cnr.shared_segments.spec[1]
        assert leaked <= {graph_seg}

    def test_graph_segment_freed_with_graph(self):
        g = erdos_renyi_graph(300, 0.02, seed=5)
        shared = SharedGraph.for_graph(g)
        name = shared.spec[1]
        assert name in _segment_names()
        del g, shared
        import gc

        gc.collect()
        assert name not in _segment_names()


# ----------------------------------------------------------------------
# out-of-core store
# ----------------------------------------------------------------------
class TestStore:
    def test_save_load_round_trip(self, small_cnr, tmp_path):
        store = save_graph(small_cnr, tmp_path / "g.csrg")
        assert is_graph_store(store)
        g = load_graph(store)
        assert g.out_of_core
        assert g == small_cnr
        assert g.fingerprint() == small_cnr.fingerprint()
        resident = load_graph(store, mmap=False)
        assert not resident.out_of_core
        assert resident == small_cnr

    def test_load_graph_file_dispatch(self, small_cnr, tmp_path):
        store = save_graph(small_cnr, tmp_path / "g.csrg")
        assert load_graph_file(store).out_of_core
        with pytest.raises(ValueError, match="no such graph"):
            load_graph_file(tmp_path / "missing")
        with pytest.raises(ValueError, match="not a graph store"):
            load_graph(tmp_path)

    def test_truncated_store_fails_loudly(self, small_cnr, tmp_path):
        store = save_graph(small_cnr, tmp_path / "g.csrg")
        meta = store / "meta.json"
        meta.write_text(meta.read_text().replace(
            f'"num_vertices": {small_cnr.num_vertices}', '"num_vertices": 7'))
        with pytest.raises(ValueError, match="truncated"):
            load_graph(store)

    def test_mmap_graph_through_execute_small_cache(self, small_cnr, tmp_path):
        """An out-of-core graph colors end-to-end through execute() and
        serves from a cache whose byte budget is far below the CSR size."""
        from repro.serve import ColoringService

        store = save_graph(small_cnr, tmp_path / "g.csrg")
        g = load_graph(store)
        config = RunConfig(strategy="greedy-ff", mode="mp", threads=2, seed=9)
        result = execute(g, config)
        assert_proper(g, result.coloring)
        baseline = execute(small_cnr, config)
        assert np.array_equal(result.coloring.colors, baseline.coloring.colors)

        csr_bytes = g.indptr.nbytes + g.indices.nbytes
        svc = ColoringService(max_bytes=max(1024, csr_bytes // 16))
        job = svc.submit_and_wait(g, config)
        assert job.status == "done"
        assert np.array_equal(job.result.coloring.colors,
                              baseline.coloring.colors)

    def test_chunked_edges_match_bulk(self, small_cnr, tmp_path):
        g = load_graph(save_graph(small_cnr, tmp_path / "g.csrg"))
        u0, v0 = small_cnr.edge_arrays()
        chunks = list(g.edge_chunks(chunk=97))
        u1 = np.concatenate([c[0] for c in chunks])
        v1 = np.concatenate([c[1] for c in chunks])
        assert np.array_equal(u0, u1) and np.array_equal(v0, v1)


# ----------------------------------------------------------------------
# spawn context
# ----------------------------------------------------------------------
class TestSpawnContext:
    def test_spawn_smoke_subprocess(self):
        """Full parity run under REPRO_MP_CONTEXT=spawn, in a fresh
        interpreter so the start method is genuinely spawn-side."""
        code = (
            "import numpy as np\n"
            "from repro.graph import erdos_renyi_graph\n"
            "from repro.parallel.mp import mp_greedy_ff\n"
            "g = erdos_renyi_graph(200, 0.04, seed=3)\n"
            "a = mp_greedy_ff(g, num_workers=2, seed=5, shm=True)\n"
            "b = mp_greedy_ff(g, num_workers=2, seed=5, shm=False)\n"
            "assert a.meta['context'] == 'spawn', a.meta\n"
            "assert b.meta['context'] == 'spawn', b.meta\n"
            "assert np.array_equal(a.colors, b.colors)\n"
        )
        env = dict(os.environ, REPRO_MP_CONTEXT="spawn")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")]))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
