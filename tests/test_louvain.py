"""Tests for serial Louvain."""

import numpy as np
import pytest

from repro.community import WeightedGraph, louvain, louvain_phase, modularity
from repro.community.louvain import best_move


class TestBestMove:
    def test_joins_clique_neighbors(self, two_cliques):
        wg = WeightedGraph.from_csr(two_cliques)
        comm = np.arange(10, dtype=np.int64)
        comm[:5] = 0  # first clique united except we test vertex 6
        tot = np.zeros(10)
        np.add.at(tot, comm, wg.strengths)
        target = best_move(wg, 6, comm, tot, wg.total_weight)
        assert target in {5, 7, 8, 9}  # one of its clique's labels

    def test_isolated_vertex_stays(self):
        from repro.graph import empty_graph

        wg = WeightedGraph.from_csr(empty_graph(3))
        comm = np.arange(3, dtype=np.int64)
        assert best_move(wg, 0, comm, wg.strengths.copy(), 1.0) == 0


class TestLouvainPhase:
    def test_two_cliques_found(self, two_cliques):
        wg = WeightedGraph.from_csr(two_cliques)
        comm, history = louvain_phase(wg)
        labels = np.unique(comm)
        assert len(labels) == 2
        assert len(np.unique(comm[:5])) == 1
        assert len(np.unique(comm[5:])) == 1

    def test_history_is_nondecreasing_at_convergence(self, small_cnr):
        wg = WeightedGraph.from_csr(small_cnr)
        _, history = louvain_phase(wg)
        assert len(history) >= 1
        for a, b in zip(history, history[1:]):
            assert b >= a - 1e-9

    def test_empty_graph(self):
        from repro.graph import empty_graph

        wg = WeightedGraph.from_csr(empty_graph(0))
        comm, history = louvain_phase(wg)
        assert comm.size == 0


class TestLouvainFull:
    def test_two_cliques(self, two_cliques):
        res = louvain(two_cliques)
        assert res.num_communities == 2
        assert res.modularity > 0.4

    def test_modularity_matches_membership(self, small_cnr):
        res = louvain(small_cnr)
        assert res.modularity == pytest.approx(
            modularity(small_cnr, res.communities))

    def test_improves_over_singletons(self, small_cnr):
        res = louvain(small_cnr)
        singles = modularity(small_cnr, np.arange(small_cnr.num_vertices))
        assert res.modularity > singles

    def test_membership_covers_all_vertices(self, small_cnr):
        res = louvain(small_cnr)
        assert res.communities.shape[0] == small_cnr.num_vertices
        assert res.communities.min() >= 0

    def test_ring_of_cliques(self):
        # 4 cliques of 5 in a ring: Louvain should find the 4 cliques
        from repro.graph import from_edge_list

        edges = []
        for c in range(4):
            base = 5 * c
            edges += [(base + i, base + j) for i in range(5) for j in range(i + 1, 5)]
            edges.append((base, 5 * ((c + 1) % 4) + 1))
        g = from_edge_list(edges)
        res = louvain(g)
        assert res.num_communities == 4
        assert res.modularity > 0.5

    def test_phases_recorded(self, small_cnr):
        res = louvain(small_cnr)
        assert res.num_phases >= 1
        assert len(res.phase_histories) == res.num_phases
