"""Tests for the thread-sweep timing drivers."""

import pytest

from repro.coloring import greedy_coloring
from repro.machine import tilegx36, xeon_x7560
from repro.machine.timing import SweepResult, scheme_comparison, speedups, thread_sweep
from repro.parallel import parallel_scheduled_balance, parallel_shuffle_balance


@pytest.fixture(scope="module")
def sweep(small_cnr_module):
    g, init = small_cnr_module
    return thread_sweep(g, init, parallel_shuffle_balance, tilegx36(), [1, 4, 16])


@pytest.fixture(scope="module")
def small_cnr_module():
    from repro.graph import load_dataset

    g = load_dataset("cnr", scale=0.06, seed=1)
    return g, greedy_coloring(g)


class TestThreadSweep:
    def test_lengths_align(self, sweep):
        assert len(sweep.threads) == len(sweep.times_s) == len(sweep.breakdowns) == 3

    def test_times_positive(self, sweep):
        assert all(t > 0 for t in sweep.times_s)

    def test_colorings_kept(self, sweep):
        assert len(sweep.colorings) == 3
        assert sweep.colorings[0].meta["threads"] == 1

    def test_time_at(self, sweep):
        assert sweep.time_at(4) == sweep.times_s[1]

    def test_too_many_threads_rejected(self, small_cnr_module):
        g, init = small_cnr_module
        with pytest.raises(ValueError, match="cores"):
            thread_sweep(g, init, parallel_shuffle_balance, tilegx36(), [64])

    def test_scaling_on_mesh_machine(self, sweep):
        # Tilera model: 16 threads beat 1 thread on this input
        assert sweep.time_at(16) < sweep.time_at(1)


class TestSpeedups:
    def test_baseline_is_one(self, sweep):
        s = speedups(sweep)
        assert s[0] == pytest.approx(1.0)

    def test_explicit_baseline(self, sweep):
        s = speedups(sweep, baseline_threads=4)
        assert s[1] == pytest.approx(1.0)

    def test_empty(self):
        assert speedups(SweepResult(machine="m", algorithm="a")) == []


class TestSchemeComparison:
    def test_keys_and_positive(self, small_cnr_module):
        g, init = small_cnr_module
        out = scheme_comparison(
            g, init,
            {"vff": parallel_shuffle_balance, "sched": parallel_scheduled_balance},
            xeon_x7560(), 8,
        )
        assert set(out) == {"vff", "sched"}
        assert all(v > 0 for v in out.values())

    def test_sched_beats_vff_on_x86(self, small_cnr_module):
        g, init = small_cnr_module
        out = scheme_comparison(
            g, init,
            {"vff": parallel_shuffle_balance, "sched": parallel_scheduled_balance},
            xeon_x7560(), 16,
        )
        assert out["sched"] < out["vff"]
