"""Tests for the strategy registry (Table I dispatch)."""

import pytest

from repro.coloring import (
    STRATEGIES,
    assert_proper,
    balance_coloring,
    color_and_balance,
    greedy_coloring,
)

TABLE1_STRATEGIES = {
    "greedy-lu", "greedy-random", "vff", "vlu", "cff", "clu",
    "sched-rev", "sched-fwd", "recoloring",
}


class TestRegistry:
    def test_all_table1_rows_present(self):
        assert TABLE1_STRATEGIES <= set(STRATEGIES)

    def test_greedy_ff_row_present(self):
        spec = STRATEGIES["greedy-ff"]
        assert spec.category == "ab_initio"
        assert spec.modes == ("sequential", "superstep", "mp")

    def test_categories(self):
        assert STRATEGIES["greedy-lu"].category == "ab_initio"
        assert STRATEGIES["vff"].category == "guided"
        assert STRATEGIES["recoloring"].category == "guided"

    def test_every_spec_exposes_modes(self):
        for name, spec in STRATEGIES.items():
            assert "sequential" in spec.modes, name
            assert spec.implementation("sequential") is spec.sequential, name

    def test_same_color_count_flags(self):
        for name in ("vff", "vlu", "cff", "clu", "sched-rev", "sched-fwd"):
            assert STRATEGIES[name].same_color_count, name
        for name in ("recoloring", "greedy-lu", "greedy-random"):
            assert not STRATEGIES[name].same_color_count, name

    def test_descriptions_nonempty(self):
        for spec in STRATEGIES.values():
            assert spec.description


class TestDispatch:
    @pytest.mark.parametrize("name", sorted(TABLE1_STRATEGIES))
    def test_color_and_balance_all(self, small_cnr, name):
        out = color_and_balance(small_cnr, name, seed=0)
        assert_proper(small_cnr, out)

    @pytest.mark.parametrize("name", ["vff", "vlu", "cff", "clu", "sched-rev"])
    def test_guided_preserve_color_count(self, small_cnr, name):
        init = greedy_coloring(small_cnr)
        out = balance_coloring(small_cnr, init, name)
        assert out.num_colors == init.num_colors

    def test_balance_coloring_rejects_ab_initio(self, small_cnr):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match="ab initio"):
            balance_coloring(small_cnr, init, "greedy-lu")

    def test_unknown_strategy(self, small_cnr):
        with pytest.raises(ValueError, match="unknown strategy"):
            color_and_balance(small_cnr, "quantum")

    def test_kwargs_forwarded(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = balance_coloring(small_cnr, init, "sched-rev", rounds=2)
        assert out.meta["rounds"] == 2

    def test_ordering_forwarded(self, small_cnr):
        out = color_and_balance(small_cnr, "vff", ordering="smallest_last")
        assert_proper(small_cnr, out)
