"""Tests for the supervision/degradation layer (repro.serve.supervisor).

Covers the circuit breaker's state machine, the degradation ladder, the
warm pool's supervision surface (heartbeat/ping/respawn and the
retryable PoolUnavailableError), the scheduler's infrastructure-retry
re-admission, per-job deadlines, store-error tolerance, spill-failure
degradation, the HTTP 500 boundary, and the supervisor's tick loop —
all in-process and deterministic (chaos comes from seeded FaultPlans or
explicit calls, never from timing luck).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

import repro.serve.backends as backends_mod
from repro.graph import erdos_renyi_graph
from repro.resilience import (
    FaultPlan,
    PROCESS_FAULT_KINDS,
    WORKER_FAULT_KINDS,
)
from repro.run import RunConfig, execute
from repro.serve import (
    ChaosStore,
    CircuitBreaker,
    ColoringService,
    DegradingBackend,
    InlineBackend,
    SequentialBackend,
)
from repro.serve.api import dispatch
from repro.shm import PoolUnavailableError, WarmPool, shutdown_warm_pool


@pytest.fixture
def graph():
    return erdos_renyi_graph(250, 0.03, seed=3)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# fault-plan chaos grammar
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_chaos_kinds_round_trip(self):
        spec = "poolkill@r2.w1;spill@r0x3;spillrot@r4;storeerr@r1x2"
        plan = FaultPlan.from_spec(spec)
        assert plan.to_spec() == spec
        assert [f.kind for f in plan.faults] == [
            "poolkill", "spill", "spillrot", "storeerr"]

    def test_for_op_occurrence_window(self):
        plan = FaultPlan.from_spec("spill@r1x2")
        assert plan.for_op("spill", 0) is None
        assert plan.for_op("spill", 1) is not None
        assert plan.for_op("spill", 2) is not None
        assert plan.for_op("spill", 3) is None

    def test_for_op_rejects_worker_kinds(self):
        with pytest.raises(ValueError, match="for_op kind"):
            FaultPlan().for_op("kill", 0)

    def test_chaos_kinds_never_match_worker_tasks(self):
        plan = FaultPlan.from_spec("poolkill@r0.w0;spill@r0;storeerr@r0")
        assert plan.for_task(0, 0) is None
        assert set(PROCESS_FAULT_KINDS).isdisjoint(WORKER_FAULT_KINDS)

    def test_worker_kinds_still_require_worker(self):
        with pytest.raises(ValueError, match="needs a worker"):
            FaultPlan.from_spec("kill@r0")
        FaultPlan.from_spec("spill@r0")  # IO kinds do not


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        br = CircuitBreaker("x", fail_threshold=3, cooldown_s=10, clock=clock)
        assert br.state == "closed" and br.allow()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open" and not br.allow()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        br = CircuitBreaker("x", fail_threshold=1, cooldown_s=10, clock=clock)
        br.record_failure()
        assert not br.allow()
        clock.now += 10
        assert br.state == "half-open" and br.allow()
        br.record_success()
        assert br.state == "closed"

    def test_half_open_probe_failure_rearms_cooldown(self):
        clock = FakeClock()
        br = CircuitBreaker("x", fail_threshold=1, cooldown_s=10, clock=clock)
        br.record_failure()
        clock.now += 10
        assert br.allow()
        br.record_failure()  # failed probe
        assert br.state == "open" and not br.allow()
        clock.now += 9.9
        assert not br.allow()
        clock.now += 0.2
        assert br.allow()

    def test_success_resets_streak(self):
        br = CircuitBreaker("x", fail_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
class _Boom(backends_mod.ExecutionBackend):
    name = "boom"

    def __init__(self, exc=RuntimeError("shard blew up")):
        self.exc = exc
        self.calls = 0

    def run(self, job):
        self.calls += 1
        raise self.exc


class TestDegradingBackend:
    def _service(self, backend, **kwargs):
        svc = ColoringService(**kwargs)
        svc.scheduler.backend = backend
        svc.backend = backend
        return svc

    def test_falls_through_to_inline_and_stamps_meta(self, graph):
        boom = _Boom()
        ladder = DegradingBackend.ladder(boom)
        assert [r.name for r in ladder.rungs] == ["boom", "inline",
                                                  "sequential"]
        svc = self._service(ladder)
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "done"
        assert job.meta["degraded_to"] == "inline"
        assert job.meta["downgrades"] == ["boom"]
        assert ladder.stats()["downgrades"] == 1
        assert ladder.stats()["breakers"]["boom"]["failures"] == 1

    def test_open_breaker_skips_rung(self, graph):
        boom = _Boom()
        ladder = DegradingBackend.ladder(boom, fail_threshold=1,
                                         cooldown_s=3600)
        svc = self._service(ladder)
        svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert boom.calls == 1 and ladder.degraded
        # different key → second job skips the open boom rung entirely
        svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=1))
        assert boom.calls == 1
        assert ladder.stats()["rung_skips"] >= 1

    def test_last_rung_always_attempted(self, graph, monkeypatch):
        ladder = DegradingBackend([SequentialBackend()], fail_threshold=1,
                                  cooldown_s=3600)
        ladder.breakers[0].record_failure()
        assert not ladder.breakers[0].allow()
        svc = self._service(ladder)
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "done"

    def test_all_rungs_fail_surfaces_last_error(self, graph):
        ladder = DegradingBackend([_Boom(), _Boom(ValueError("still bad"))])
        svc = self._service(ladder)
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "failed"
        assert "still bad" in job.error

    def test_ladder_passthrough_and_dedup(self):
        ladder = DegradingBackend.ladder(InlineBackend())
        assert [r.name for r in ladder.rungs] == ["inline", "sequential"]
        assert DegradingBackend.ladder(ladder) is ladder

    def test_sequential_rung_result_is_proper_and_uncached(self, graph):
        ladder = DegradingBackend.ladder(_Boom())
        # force straight to the last rung
        ladder.rungs = [ladder.rungs[0], ladder.rungs[2]]
        ladder.breakers = [ladder.breakers[0], ladder.breakers[2]]
        svc = self._service(ladder)
        cfg = RunConfig("greedy-ff", mode="superstep", threads=2, seed=0)
        job = svc.submit_and_wait(graph, cfg)
        assert job.status == "done"
        assert job.meta["degraded_mode"] == "sequential"
        # the degraded result must not be published under the batch-sync key
        assert svc.cache.get(job.key) is None
        expected = execute(graph, cfg.replace(mode="sequential", threads=1))
        assert (job.result.coloring.colors == expected.coloring.colors).all()


# ----------------------------------------------------------------------
# warm pool supervision surface
# ----------------------------------------------------------------------
class TestWarmPoolSupervision:
    def teardown_method(self):
        shutdown_warm_pool()

    def test_submit_before_ensure_is_retryable(self):
        pool = WarmPool()
        with pytest.raises(PoolUnavailableError):
            pool.apply_async(os.getpid, ())

    def test_terminated_pool_raises_retryable_then_heals(self):
        pool = WarmPool()
        pool.ensure(2)
        pool._pool.terminate()  # external chaos
        with pytest.raises(PoolUnavailableError):
            pool.apply_async(os.getpid, ())
        # the next ensure cold-starts a replacement instead of reusing
        assert pool.ensure(2) is False
        assert pool.stats()["respawns"] == 1
        assert pool.ping(timeout=30)
        pool.shutdown()

    def test_heartbeat_and_ping(self):
        pool = WarmPool()
        assert pool.heartbeat()["pids"] == []
        assert pool.ping() is True  # nothing to probe
        pool.ensure(2)
        hb = pool.heartbeat()
        assert len(hb["pids"]) == 2 and hb["healthy"] and not hb["dead"]
        assert pool.ping(timeout=30)
        pool.shutdown()

    def test_respawn_replaces_workers(self):
        pool = WarmPool()
        assert pool.respawn() == 0  # never ensured: no-op
        pool.ensure(2)
        old = set(pool.worker_pids())
        assert pool.respawn() == 2
        new = set(pool.worker_pids())
        assert new and new.isdisjoint(old)
        assert pool.ping(timeout=30)
        assert pool.stats()["respawns"] == 1
        pool.shutdown()

    def test_sigkilled_worker_detected_by_heartbeat(self):
        pool = WarmPool()
        pool.ensure(2)
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            hb = pool.heartbeat()
            if victim in hb["dead"] or victim not in hb["pids"]:
                break
            time.sleep(0.02)
        else:
            pytest.fail("killed worker never left the heartbeat")
        # a worker killed while holding the task-queue lock wedges the
        # whole pool; either way the supervisor's answer — respawn —
        # restores service and shutdown stays bounded
        if not pool.ping(timeout=5):
            assert pool.respawn() == 2
        assert pool.ping(timeout=30)
        pool.shutdown()


# ----------------------------------------------------------------------
# scheduler re-admission (running → pending on pool death)
# ----------------------------------------------------------------------
class _DiesOnce(backends_mod.ExecutionBackend):
    """Raises PoolUnavailableError for the first N runs, then succeeds."""

    name = "dies-once"

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = 0

    def run(self, job):
        self.calls += 1
        if self.calls <= self.failures:
            raise PoolUnavailableError("pool terminated mid-flight")
        return backends_mod.execute(job.graph, job.config,
                                    initial=job.initial)


class TestInfrastructureRetry:
    def test_pool_death_readmits_through_recovery_edge(self, graph):
        svc = ColoringService(job_retries=1)
        svc.scheduler.backend = _DiesOnce()
        job = svc.submit(graph, RunConfig("greedy-ff", seed=0))
        assert svc.process(max_rounds=1) >= 1  # dispatch fails, readmit
        assert job.status == "pending"
        assert svc.store.get(job.id)["status"] == "pending"
        svc.process()
        assert job.status == "done" and job.meta["retries"] == 1
        assert svc.scheduler.stats()["readmitted"] == 1

    def test_retries_exhausted_fails_job(self, graph):
        svc = ColoringService(job_retries=1)
        svc.scheduler.backend = _DiesOnce(failures=5)
        job = svc.submit(graph, RunConfig("greedy-ff", seed=0))
        svc.process()
        svc.process()
        assert job.status == "failed"
        assert "PoolUnavailableError" in job.error

    def test_no_retries_by_default(self, graph):
        svc = ColoringService()
        svc.scheduler.backend = _DiesOnce()
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "failed"

    def test_followers_readmitted_with_primary(self, graph):
        svc = ColoringService(job_retries=1)
        svc.scheduler.backend = _DiesOnce()
        cfg = RunConfig("greedy-ff", seed=0)
        a = svc.submit(graph, cfg)
        b = svc.submit(graph, cfg)
        svc.process()  # both readmitted
        svc.process()
        assert a.status == "done" and b.status == "done"
        assert {a.source, b.source} == {"computed", "dedup"}


# ----------------------------------------------------------------------
# per-job deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_job_fails_fast_without_executing(self, graph,
                                                      counted_execute):
        svc = ColoringService()
        job = svc.submit(graph, RunConfig("greedy-ff", seed=0),
                         deadline_ms=0.01)
        time.sleep(0.002)
        svc.process()
        assert job.status == "failed"
        assert job.source == "deadline"
        assert job.meta["reason"] == "deadline"
        assert "deadline" in job.error
        assert counted_execute == []  # never occupied a worker
        assert svc.queue.stats()["deadline_expired"] == 1
        assert svc.scheduler.stats()["deadline_failed"] == 1

    def test_generous_deadline_completes(self, graph):
        svc = ColoringService()
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0),
                                  deadline_ms=60_000)
        assert job.status == "done"
        assert job.describe()["deadline_ms"] == 60_000

    def test_expire_deadlines_sweeps_queue(self, graph):
        svc = ColoringService()
        jobs = [svc.submit(graph, RunConfig("greedy-ff", seed=s),
                           deadline_ms=0.01) for s in range(3)]
        keep = svc.submit(graph, RunConfig("greedy-ff", seed=9))
        time.sleep(0.002)
        assert svc.queue.expire_deadlines() == 3
        assert all(j.status == "failed" for j in jobs)
        assert keep.status == "pending"
        assert svc.queue.pending_count == 1

    def test_invalid_deadline_rejected(self, graph):
        svc = ColoringService()
        from repro.serve import AdmissionError

        with pytest.raises(AdmissionError, match="deadline_ms"):
            svc.submit(graph, RunConfig("greedy-ff", seed=0), deadline_ms=-5)

    def test_http_deadline_field(self, graph):
        svc = ColoringService()
        body = {"input": "cnr", "scale": 0.05, "seed": 0,
                "config": {"strategy": "greedy-ff", "seed": 0},
                "deadline_ms": 60_000}
        status, reply = dispatch(svc, "POST", "/submit", body)
        assert status == 202
        assert svc.queue.job(reply["job_id"]).deadline_ms == 60_000
        status, reply = dispatch(svc, "POST", "/submit",
                                 dict(body, deadline_ms="soon"))
        assert status == 400 and "deadline_ms" in reply["error"]

    @pytest.fixture
    def counted_execute(self, monkeypatch):
        calls = []
        real = backends_mod.execute

        def counting(graph, config, *, initial=None):
            calls.append(config)
            return real(graph, config, initial=initial)

        monkeypatch.setattr(backends_mod, "execute", counting)
        return calls


# ----------------------------------------------------------------------
# store-error tolerance (storeerr chaos)
# ----------------------------------------------------------------------
class TestStoreErrorTolerance:
    def test_injected_store_error_does_not_fail_job(self, graph):
        # transition #1 is the first mark_running → raises StoreError
        svc = ColoringService(fault_plan="storeerr@r0x2")
        assert isinstance(svc.store, ChaosStore)
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "done"
        assert svc.store.injected >= 1
        assert svc.queue.stats()["store_errors"] >= 1
        health = svc.healthz()
        assert health["status"] == "degraded"
        assert any("store" in r for r in health["degraded_reasons"])

    def test_memory_remains_source_of_truth(self, graph):
        svc = ColoringService(fault_plan="storeerr@r0x50")
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "done" and job.result is not None
        # the row never left pending, but the client still gets a result
        assert svc.store.get(job.id)["status"] == "pending"
        assert svc.result(job.id).result is job.result


# ----------------------------------------------------------------------
# spill-failure degradation (spill / spillrot chaos)
# ----------------------------------------------------------------------
class TestSpillDegradation:
    def test_enospc_degrades_to_memory_only(self, graph, tmp_path):
        svc = ColoringService(spill_dir=tmp_path / "spill",
                              fault_plan="spill@r0x2")
        jobs = [svc.submit_and_wait(
            graph, RunConfig("greedy-ff", seed=s), ) for s in range(3)]
        assert all(j.status == "done" for j in jobs)
        # force eviction-driven spills by clearing memory only
        stats = svc.cache.stats()
        assert stats["spill_errors"] == 0  # no eviction yet: no writes
        svc.cache.max_bytes = 1
        svc.cache.put(jobs[0].key, jobs[0].result)  # evict+spill → ENOSPC
        svc.cache.put(jobs[1].key, jobs[1].result)
        stats = svc.cache.stats()
        assert stats["spill_errors"] == 2
        assert stats["degraded"] is True
        svc.cache.put(jobs[2].key, jobs[2].result)  # degraded: no attempt
        assert svc.cache.stats()["spill_errors"] == 2
        health = svc.healthz()
        assert health["status"] == "degraded"
        assert any("cache" in r for r in health["degraded_reasons"])
        assert not list((tmp_path / "spill").glob("*.npz"))

    def test_torn_spill_write_quarantined_on_read(self, graph, tmp_path):
        spill = tmp_path / "spill"
        svc = ColoringService(spill_dir=spill, fault_plan="spillrot@r0")
        svc.cache.max_bytes = 1  # every put evicts+spills immediately
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "done"
        assert len(list(spill.glob("*.npz"))) == 1  # truncated on disk
        # the read path must quarantine, miss, and recompute — not crash
        assert svc.cache.get(job.key) is None
        assert svc.cache.stats()["spill_corrupt"] == 1
        assert list(spill.glob("*.npz.corrupt"))
        assert not list(spill.glob("*.npz"))
        again = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert again.status == "done" and again.source == "computed"
        assert (again.result.coloring.colors
                == job.result.coloring.colors).all()


# ----------------------------------------------------------------------
# HTTP 500 boundary
# ----------------------------------------------------------------------
class TestHttpErrorBoundary:
    def test_unexpected_exception_becomes_structured_500(self, monkeypatch):
        from repro.obs import Recorder

        svc = ColoringService(recorder=Recorder())
        monkeypatch.setattr(ColoringService, "stats",
                            lambda self: 1 / 0)
        status, payload = dispatch(svc, "GET", "/stats")
        assert status == 500
        assert payload == {"error": "internal error: ZeroDivisionError: "
                                    "division by zero"}
        assert svc.recorder.events_of("serve_http_error")


# ----------------------------------------------------------------------
# the supervisor itself
# ----------------------------------------------------------------------
class TestSupervisor:
    def teardown_method(self):
        shutdown_warm_pool()

    def test_tick_sweeps_deadlines(self, graph):
        svc = ColoringService(supervise=True)
        jobs = [svc.submit(graph, RunConfig("greedy-ff", seed=s),
                           deadline_ms=0.01) for s in range(2)]
        time.sleep(0.002)
        report = svc.supervisor.tick()
        assert report["expired"] == 2
        assert all(j.status == "failed" for j in jobs)
        assert svc.supervisor.stats()["deadline_expired"] == 2

    def test_tick_respawns_terminated_pool(self):
        from repro.shm import warm_pool

        svc = ColoringService(supervise=True)
        pool = warm_pool()
        pool.ensure(2)
        pool._pool.terminate()  # the pool is now unusable
        report = svc.supervisor.tick()
        assert report["respawned"] is True
        assert pool.ping(timeout=30)
        assert svc.supervisor.stats()["pool_respawns"] == 1

    def test_tick_restarts_dead_pump(self, graph):
        svc = ColoringService(supervise=True)
        try:
            svc.start()
            assert svc.pump_alive
            # simulate a pump crash: kill the thread by stopping it but
            # leaving _pump_wanted set (what an uncaught death looks like)
            svc._stopping.set()
            svc._wake.set()
            svc._pump.join(5)
            assert not svc.pump_alive and svc._pump_wanted
            svc._stopping.clear()
            report = svc.supervisor.tick()
            assert report["pump_restarted"] is True
            assert svc.pump_alive
            job = svc.submit(graph, RunConfig("greedy-ff", seed=0))
            assert job.wait(30) and job.status == "done"
        finally:
            svc.stop()

    def test_poolkill_chaos_injected_on_scheduled_tick(self):
        from repro.shm import warm_pool

        svc = ColoringService(supervise=True, fault_plan="poolkill@r1.w0")
        warm_pool().ensure(2)
        before = set(warm_pool().worker_pids())
        assert svc.supervisor.tick()["killed"] is None  # tick 0: no fault
        victim = svc.supervisor.tick()["killed"]  # tick 1: SIGKILL
        assert victim in before
        assert svc.supervisor.stats()["kills_injected"] == 1
        # pool still serves (mp self-heal or respawn on a later tick)
        deadline = time.monotonic() + 30
        while not warm_pool().ping(timeout=5):
            assert time.monotonic() < deadline, "pool never recovered"
            svc.supervisor.tick()

    def test_supervisor_thread_lifecycle(self):
        svc = ColoringService(supervise=True, supervisor_interval=0.01)
        svc.start()
        try:
            deadline = time.monotonic() + 10
            while svc.supervisor.stats()["ticks"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert svc.supervisor.running
        finally:
            svc.stop()
        assert not svc.supervisor.running

    def test_tick_errors_do_not_kill_loop(self, monkeypatch):
        svc = ColoringService(supervise=True, supervisor_interval=0.01)
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("tick exploded")

        monkeypatch.setattr(svc.supervisor, "tick", boom)
        svc.supervisor.start()
        try:
            deadline = time.monotonic() + 10
            while len(calls) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert svc.supervisor.running
            assert svc.supervisor.stats()["supervisor_errors"] >= 1
        finally:
            svc.supervisor.stop()


# ----------------------------------------------------------------------
# stop() drains or marks in-flight jobs
# ----------------------------------------------------------------------
class TestStopInterrupted:
    def test_stop_reports_interrupted_jobs(self, graph, tmp_path):
        svc = ColoringService(store=tmp_path / "store")
        svc.submit(graph, RunConfig("greedy-ff", seed=0))
        running = svc.queue.take_batch(1)[0]
        svc.queue.mark_running(running)  # dispatched, never finished
        summary = svc.stop()
        assert summary["interrupted"] == 1
        assert summary["pump_joined"] is True
        # the row went back to pending with the interruption recorded,
        # so the next life's recovery re-admits it
        svc2 = ColoringService(store=tmp_path / "store")
        assert svc2.recovered["requeued"] == 1
        job = svc2.queue.take_batch(1)[0]
        assert job.meta.get("interrupted") is True
        svc2.stop()

    def test_clean_stop_reports_zero(self, graph):
        svc = ColoringService()
        svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert svc.stop() == {"interrupted": 0, "pump_joined": True}
