"""Failure-path tests: fault injection, guarded execution, self-healing.

Every fault a :class:`repro.resilience.FaultPlan` can inject — worker
kill, stall, corrupted proposals, stale snapshots, stuck rounds — must be
detected and recovered, with the final coloring proper and, where the
recovery protocol guarantees it (retry against the same snapshot),
bit-identical to the fault-free run.  Replays of the same plan and seed
must reproduce the identical event sequence and coloring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring import assert_proper, greedy_coloring, is_proper
from repro.obs import Recorder
from repro.parallel.engine import ExecutionTrace
from repro.parallel.greedy import parallel_greedy_ff
from repro.parallel.mp import mp_greedy_ff
from repro.parallel.recolor import parallel_recoloring
from repro.parallel.shuffled import parallel_shuffle_balance
from repro.resilience import (
    NO_FAULTS,
    ConvergenceWatchdog,
    FaultPlan,
    FaultSpec,
    InvariantViolationError,
    check_invariants,
    heal,
    repair_coloring,
    resolve_fault_plan,
    violating_vertices,
)
from repro.run import RunConfig, execute


def _fault_events(rec: Recorder) -> list[tuple]:
    """Stable (timing-free) projection of the resilience event stream."""
    kinds = ("fault_injected", "fault_detected", "fault_recovered",
             "mp_salvage", "mp_degraded", "watchdog_fallback",
             "invariant_violation", "repair", "sequential_fallback")
    return [
        (e["kind"], e.get("fault"), e.get("round"), e.get("worker"),
         e.get("attempt"))
        for e in rec.events if e["kind"] in kinds
    ]


# ---------------------------------------------------------------------------
# FaultPlan: parsing, determinism, resolution
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_round_trip(self):
        spec = "kill@r1.w0;stall@r0.w2:1.5;corrupt@r3.w1;stale@r2.w0;stick@r0:4"
        plan = FaultPlan.from_spec(spec)
        assert plan.to_spec() == spec
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_attempts_suffix(self):
        plan = FaultPlan.from_spec("kill@r0.w0x3")
        assert plan.for_task(0, 0, attempt=0).kind == "kill"
        assert plan.for_task(0, 0, attempt=2) is not None
        assert plan.for_task(0, 0, attempt=3) is None

    def test_task_matching(self):
        plan = FaultPlan.from_spec("kill@r1.w0")
        assert plan.for_task(1, 0) is not None
        assert plan.for_task(0, 0) is None
        assert plan.for_task(1, 1) is None

    def test_stick_window(self):
        plan = FaultPlan.from_spec("stick@r2:3")
        assert not plan.stick_active(1)
        assert all(plan.stick_active(r) for r in (2, 3, 4))
        assert not plan.stick_active(5)

    def test_malformed_specs_rejected(self):
        for bad in ("boom@r0.w0", "kill@w0", "kill@r0", "kill", "@r0.w0"):
            with pytest.raises(ValueError):
                FaultPlan.from_spec(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("kill", round=-1)
        with pytest.raises(ValueError):
            FaultSpec("nope", round=0)
        with pytest.raises(ValueError):
            FaultSpec("stall", round=0, duration=0)

    def test_rng_deterministic_per_site(self):
        plan = FaultPlan(seed=7)
        a = plan.rng(1, 0).integers(0, 1000, 8)
        b = plan.rng(1, 0).integers(0, 1000, 8)
        c = plan.rng(1, 1).integers(0, 1000, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_corrupt_is_deterministic_and_invalid(self):
        plan = FaultPlan(seed=3)
        proposals = np.arange(20, dtype=np.int64)
        x = plan.corrupt(proposals, 0, 1)
        y = plan.corrupt(proposals, 0, 1)
        assert np.array_equal(x, y)
        assert (x < 0).any()
        assert np.array_equal(proposals, np.arange(20))  # input untouched

    def test_resolve(self, monkeypatch):
        assert resolve_fault_plan(None) is NO_FAULTS
        plan = FaultPlan.from_spec("kill@r0.w0")
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan("kill@r0.w0") == plan
        monkeypatch.setenv("REPRO_FAULT_PLAN", "stall@r1.w0:0.5")
        assert resolve_fault_plan(None).faults[0].kind == "stall"
        with pytest.raises(TypeError):
            resolve_fault_plan(42)

    def test_empty_plan_is_falsy(self):
        assert not NO_FAULTS
        assert FaultPlan.from_spec("kill@r0.w0")


# ---------------------------------------------------------------------------
# ConvergenceWatchdog
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_fires_after_patience_without_progress(self):
        dog = ConvergenceWatchdog(patience=3)
        assert not dog.observe(100)
        for _ in range(2):
            assert not dog.observe(100)
        assert dog.observe(100)
        assert dog.fired and dog.fired_round == 4

    def test_progress_resets_streak(self):
        dog = ConvergenceWatchdog(patience=2)
        dog.observe(100)
        dog.observe(100)
        assert not dog.observe(90)  # shrank: streak resets
        dog.observe(90)
        assert dog.observe(90)

    def test_zero_work_never_fires(self):
        dog = ConvergenceWatchdog(patience=1)
        for _ in range(5):
            assert not dog.observe(0)

    def test_emits_event_once(self):
        rec = Recorder()
        dog = ConvergenceWatchdog(patience=1, recorder=rec, algorithm="x")
        dog.observe(10)
        dog.observe(10)
        dog.observe(10)
        events = rec.events_of("watchdog_fallback")
        assert len(events) == 1
        assert events[0]["algorithm"] == "x"

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            ConvergenceWatchdog(patience=0)


# ---------------------------------------------------------------------------
# Invariant checking and repair
# ---------------------------------------------------------------------------


class TestInvariants:
    def test_clean_coloring_passes(self, random_graph):
        c = greedy_coloring(random_graph)
        assert check_invariants(random_graph, c.colors, c.num_colors) == []

    def test_uncolored_detected(self, path10):
        colors = greedy_coloring(path10).colors.copy()
        colors[3] = -1
        kinds = {v.kind for v in check_invariants(path10, colors, None)}
        assert kinds == {"uncolored"}

    def test_conflict_reports_higher_endpoint(self, path10):
        colors = greedy_coloring(path10).colors.copy()
        colors[4] = colors[3]
        (v,) = check_invariants(path10, colors, None)
        assert v.kind == "conflict"
        assert 4 in v.vertices

    def test_color_range_detected(self, path10):
        c = greedy_coloring(path10)
        colors = c.colors.copy()
        colors[0] = c.num_colors + 5
        kinds = {v.kind for v in check_invariants(path10, colors, c.num_colors)}
        assert "color-range" in kinds

    def test_length_mismatch_raises(self, path10):
        with pytest.raises(ValueError, match="covers"):
            check_invariants(path10, np.zeros(3, dtype=np.int64), 1)

    def test_repair_fixes_only_violations(self, random_graph):
        rng = np.random.default_rng(11)
        clean = greedy_coloring(random_graph).colors
        corrupted = clean.copy()
        victims = rng.choice(random_graph.num_vertices, size=15, replace=False)
        corrupted[victims] = rng.integers(-1, clean.max() + 1, size=15)
        bad = violating_vertices(check_invariants(random_graph, corrupted, None))
        fixed, repaired = repair_coloring(random_graph, corrupted)
        assert is_proper(random_graph, fixed)
        assert np.array_equal(repaired, bad)
        untouched = np.setdiff1d(np.arange(random_graph.num_vertices), bad)
        assert np.array_equal(fixed[untouched], corrupted[untouched])

    @pytest.mark.parametrize("trial", range(5))
    def test_repair_property(self, random_graph, trial):
        """Corrupt k random vertices; repair is proper and minimal."""
        rng = np.random.default_rng(100 + trial)
        clean = greedy_coloring(random_graph).colors
        corrupted = clean.copy()
        k = int(rng.integers(1, 40))
        victims = rng.choice(random_graph.num_vertices, size=k, replace=False)
        corrupted[victims] = rng.integers(-2, clean.max() + 2, size=k)
        bad = violating_vertices(check_invariants(random_graph, corrupted, None))
        fixed, repaired = repair_coloring(random_graph, corrupted)
        assert is_proper(random_graph, fixed)
        changed = np.nonzero(fixed != corrupted)[0]
        assert np.isin(changed, bad).all()  # touched only violations
        assert check_invariants(random_graph, fixed, None) == []

    def test_repair_noop_on_clean(self, random_graph):
        clean = greedy_coloring(random_graph).colors
        fixed, repaired = repair_coloring(random_graph, clean)
        assert repaired.size == 0
        assert np.array_equal(fixed, clean)


class TestHealPolicies:
    def _broken(self, graph):
        c = greedy_coloring(graph)
        colors = c.colors.copy()
        u = graph.indices[graph.indptr[0]]  # a neighbor of vertex 0
        colors[u] = colors[0]  # force one monochromatic edge
        object.__setattr__(c, "colors", colors)  # bypass constructor checks
        return c

    def test_clean_run_returns_same_object(self, random_graph):
        c = greedy_coloring(random_graph)
        healed, report = heal(random_graph, c, "raise")
        assert healed is c
        assert report["violations"] == {}

    def test_raise_policy(self, random_graph):
        broken = self._broken(random_graph)
        with pytest.raises(InvariantViolationError, match="conflict"):
            heal(random_graph, broken, "raise")

    def test_repair_policy(self, random_graph):
        broken = self._broken(random_graph)
        healed, report = heal(random_graph, broken, "repair")
        assert is_proper(random_graph, healed.colors)
        assert report["repaired"] >= 1
        assert healed.meta["repaired"] == report["repaired"]

    def test_fallback_policy(self, random_graph):
        broken = self._broken(random_graph)
        safe = greedy_coloring(random_graph)
        healed, report = heal(random_graph, broken, "fallback",
                              fallback=lambda: safe)
        assert report["fallback"]
        assert np.array_equal(healed.colors, safe.colors)
        assert healed.meta["fallback_from"] == broken.strategy

    def test_fallback_without_callable_repairs(self, random_graph):
        broken = self._broken(random_graph)
        healed, report = heal(random_graph, broken, "fallback")
        assert is_proper(random_graph, healed.colors)
        assert report["repaired"] >= 1 and not report["fallback"]

    def test_unknown_policy(self, random_graph):
        c = greedy_coloring(random_graph)
        with pytest.raises(ValueError, match="on_failure"):
            heal(random_graph, c, "ignore")


# ---------------------------------------------------------------------------
# Guarded mp execution under injected faults
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mp_graph():
    from repro.graph import erdos_renyi_graph

    return erdos_renyi_graph(300, 0.03, seed=1)


@pytest.fixture(scope="module")
def mp_clean(mp_graph):
    return mp_greedy_ff(mp_graph, num_workers=2)


class TestGuardedMp:
    def test_clean_meta_shape(self, mp_clean):
        assert mp_clean.meta["faults"] == {
            "injected": 0, "detected": 0, "recovered": 0, "salvaged": 0}
        assert mp_clean.meta["degraded"] is False
        assert mp_clean.meta["residual"] == 0

    def test_max_rounds_zero_rejected(self, mp_graph):
        with pytest.raises(ValueError, match="max_rounds"):
            mp_greedy_ff(mp_graph, num_workers=2, max_rounds=0)

    def test_bad_timeouts_rejected(self, mp_graph):
        with pytest.raises(ValueError, match="round_timeout"):
            mp_greedy_ff(mp_graph, num_workers=2, round_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            mp_greedy_ff(mp_graph, num_workers=2, max_retries=-1)

    @pytest.mark.parametrize("plan,timeout", [
        ("kill@r0.w1", 0.5),       # dead worker: detected via timeout
        ("stall@r0.w0:1.0", 0.2),  # hung worker: detected via timeout
        ("corrupt@r0.w1", 5.0),    # garbage proposals: detected at merge
    ])
    def test_fault_recovered_bit_identical(self, mp_graph, mp_clean, plan, timeout):
        c = mp_greedy_ff(mp_graph, num_workers=2, fault_plan=plan,
                         round_timeout=timeout)
        assert_proper(mp_graph, c)
        assert np.array_equal(c.colors, mp_clean.colors)
        assert c.meta["faults"]["detected"] == 1
        assert c.meta["faults"]["recovered"] == 1
        assert c.meta["degraded"] is False

    def test_multi_fault_plan_all_mp_kinds(self):
        """Regression: a stale-snapshot worker can collide with a finalized
        *higher-id* neighbor outside the work list — a case the classic
        higher-endpoint retry rule misses (impossible without faults).
        The guarded detection must retry the speculating endpoint too."""
        from repro.graph import erdos_renyi_graph

        g = erdos_renyi_graph(2000, 0.01, seed=3)
        plan = "kill@r0.w1;stall@r0.w3:1.0;corrupt@r1.w0;stale@r1.w2"
        a = mp_greedy_ff(g, num_workers=4, fault_plan=plan, round_timeout=0.5)
        assert_proper(g, a)
        assert a.meta["faults"]["injected"] == 4
        # every detected fault was recovered, none leaked into the result
        assert a.meta["faults"]["recovered"] == a.meta["faults"]["detected"] >= 2
        assert a.meta["degraded"] is False
        b = mp_greedy_ff(g, num_workers=4, fault_plan=plan, round_timeout=0.5)
        assert np.array_equal(a.colors, b.colors)  # deterministic replay

    def test_stale_snapshot_still_proper(self, mp_graph, mp_clean):
        c = mp_greedy_ff(mp_graph, num_workers=2, fault_plan="stale@r1.w0")
        assert_proper(mp_graph, c)
        assert c.num_colors <= mp_graph.max_degree + 1
        assert c.meta["faults"]["injected"] == 1

    def test_exhausted_retries_salvaged_in_process(self, mp_graph):
        c = mp_greedy_ff(mp_graph, num_workers=2, fault_plan="kill@r0.w0x9",
                         round_timeout=0.3, max_retries=1)
        assert_proper(mp_graph, c)
        assert c.meta["faults"]["salvaged"] == 1
        assert c.meta["degraded"] is True

    def test_fault_replay_identical_events_and_coloring(self, mp_graph):
        def run():
            rec = Recorder()
            c = mp_greedy_ff(mp_graph, num_workers=2, fault_plan="kill@r0.w1",
                             round_timeout=0.5, recorder=rec)
            return c, _fault_events(rec)

        c1, ev1 = run()
        c2, ev2 = run()
        assert np.array_equal(c1.colors, c2.colors)
        assert ev1 == ev2
        assert ("fault_detected", None, 0, 1, 0) in ev1
        assert ("fault_recovered", None, 0, 1, 1) in ev1

    def test_recorder_never_changes_result(self, mp_graph):
        rec = Recorder()
        a = mp_greedy_ff(mp_graph, num_workers=2, fault_plan="corrupt@r0.w0",
                         recorder=rec)
        b = mp_greedy_ff(mp_graph, num_workers=2, fault_plan="corrupt@r0.w0")
        assert np.array_equal(a.colors, b.colors)


# ---------------------------------------------------------------------------
# Superstep loops: stick faults and the convergence watchdog
# ---------------------------------------------------------------------------


class TestSuperstepWatchdog:
    def test_greedy_stuck_rounds_trigger_fallback(self, random_graph):
        rec = Recorder()
        c = parallel_greedy_ff(random_graph, num_threads=8,
                               fault_plan="stick@r1:6", watchdog_patience=3,
                               recorder=rec)
        assert_proper(random_graph, c)
        assert c.meta["watchdog_round"] == 4  # 1 real + 3 stuck observations
        assert len(rec.events_of("watchdog_fallback")) == 1
        # far fewer rounds than the 200-round cap would have burned
        assert c.meta["rounds"] < 20

    def test_greedy_stick_replay_identical(self, random_graph):
        a = parallel_greedy_ff(random_graph, num_threads=8,
                               fault_plan="stick@r1:6", watchdog_patience=3)
        b = parallel_greedy_ff(random_graph, num_threads=8,
                               fault_plan="stick@r1:6", watchdog_patience=3)
        assert np.array_equal(a.colors, b.colors)

    def test_greedy_without_faults_never_fires(self, random_graph):
        c = parallel_greedy_ff(random_graph, num_threads=8)
        assert "watchdog_round" not in c.meta

    def test_shuffled_stuck_rounds_trigger_fallback(self, random_graph):
        initial = greedy_coloring(random_graph)
        c = parallel_shuffle_balance(random_graph, initial, num_threads=8,
                                     fault_plan="stick@r0:6",
                                     watchdog_patience=3)
        assert_proper(random_graph, c)
        assert c.num_colors == initial.num_colors
        assert c.meta["watchdog_round"] >= 1

    def test_recolor_stuck_rounds_trigger_fallback(self, random_graph):
        initial = greedy_coloring(random_graph)
        c = parallel_recoloring(random_graph, initial, num_threads=8,
                                fault_plan="stick@r0:6", watchdog_patience=3)
        assert_proper(random_graph, c)
        assert c.meta["watchdog_round"] >= 1

    def test_color_centric_ignores_plan(self, random_graph):
        initial = greedy_coloring(random_graph)
        a = parallel_shuffle_balance(random_graph, initial, traversal="color",
                                     num_threads=4, fault_plan="stick@r0:4")
        b = parallel_shuffle_balance(random_graph, initial, traversal="color",
                                     num_threads=4)
        assert np.array_equal(a.colors, b.colors)


# ---------------------------------------------------------------------------
# execute(): the resilient front door
# ---------------------------------------------------------------------------


class TestExecuteResilience:
    def test_clean_run_reports_empty_resilience(self, random_graph):
        r = execute(random_graph, RunConfig("vff", mode="superstep", threads=4,
                                            seed=0))
        assert r.resilience["violations"] == {}
        assert r.resilience["repaired"] == 0
        assert not r.resilience["fallback"]
        assert "verify" in r.wall_s

    def test_mp_worker_kill_acceptance(self, random_graph):
        """ISSUE acceptance: kill one mp worker mid-round; execute returns a
        proper coloring under on_failure='repair', reports the fault, and a
        replay reproduces the identical event sequence and coloring."""
        cfg = RunConfig("greedy-ff", mode="mp", threads=2, seed=0,
                        on_failure="repair", fault_plan="kill@r0.w1",
                        strategy_kwargs={"round_timeout": 0.5})

        def run():
            rec = Recorder()
            r = execute(random_graph, cfg, recorder=rec)
            return r, _fault_events(rec)

        r1, ev1 = run()
        r2, ev2 = run()
        assert_proper(random_graph, r1.coloring)
        assert np.array_equal(r1.coloring.colors, r2.coloring.colors)
        assert ev1 == ev2
        assert r1.resilience["faults"]["detected"] == 1
        assert r1.resilience["faults"]["recovered"] == 1
        # recovery reproduces the fault-free coloring bit-identically
        clean = execute(random_graph,
                        RunConfig("greedy-ff", mode="mp", threads=2, seed=0))
        assert np.array_equal(r1.coloring.colors, clean.coloring.colors)

    def test_superstep_fault_plan_via_config(self, random_graph):
        cfg = RunConfig("greedy-ff", mode="superstep", threads=8, seed=0,
                        fault_plan="stick@r1:6")
        r = execute(random_graph, cfg)
        assert_proper(random_graph, r.coloring)
        assert r.resilience["watchdog_round"] is not None

    def test_fault_plan_rejected_without_injection_points(self, random_graph):
        with pytest.raises(ValueError, match="no fault-injection points"):
            execute(random_graph, RunConfig("kempe", fault_plan="kill@r0.w0"))

    def test_config_validates_policy_and_plan(self):
        with pytest.raises(ValueError, match="on_failure"):
            RunConfig("vff", on_failure="shrug")
        with pytest.raises(ValueError, match="malformed fault spec"):
            RunConfig("vff", fault_plan="garbage")
        with pytest.raises(ValueError, match="fault_plan"):
            RunConfig("vff", fault_plan=42)
        cfg = RunConfig("greedy-ff", mode="superstep", fault_plan="stick@r0:2")
        assert isinstance(cfg.fault_plan, FaultPlan)

    def test_env_var_installs_plan(self, random_graph, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "corrupt@r0.w1")
        c = mp_greedy_ff(random_graph, num_workers=2)
        assert c.meta["faults"]["injected"] == 1
        assert c.meta["faults"]["recovered"] == 1
        assert_proper(random_graph, c)

    def test_summary_mentions_faults(self, random_graph):
        cfg = RunConfig("greedy-ff", mode="mp", threads=2, seed=0,
                        fault_plan="corrupt@r0.w0")
        r = execute(random_graph, cfg)
        assert "faults=1(recovered=1)" in r.summary()


# ---------------------------------------------------------------------------
# ExecutionTrace.from_dict hardening (satellite)
# ---------------------------------------------------------------------------


class TestTraceFromDictHardening:
    def test_round_trip_still_works(self):
        trace = ExecutionTrace(num_threads=2, algorithm="x")
        rebuilt = ExecutionTrace.from_dict(trace.to_dict())
        assert rebuilt.num_threads == 2 and rebuilt.algorithm == "x"

    def test_missing_num_threads(self):
        with pytest.raises(ValueError, match="num_threads"):
            ExecutionTrace.from_dict({"algorithm": "x"})

    def test_missing_work_per_thread_names_index(self):
        data = {"num_threads": 2,
                "supersteps": [{"work_per_thread": [1.0, 2.0]}, {"items": 3}]}
        with pytest.raises(ValueError, match="superstep 1.*work_per_thread"):
            ExecutionTrace.from_dict(data)

    def test_non_dict_input(self):
        with pytest.raises(ValueError, match="needs a dict"):
            ExecutionTrace.from_dict([1, 2, 3])
