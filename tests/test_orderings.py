"""Tests for vertex orderings."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    erdos_renyi_graph,
    largest_first_order,
    natural_order,
    path_graph,
    random_order,
    smallest_last_order,
    vertex_order,
)
from repro.graph.properties import core_number


def _is_permutation(order, n):
    return sorted(np.asarray(order).tolist()) == list(range(n))


class TestBasicOrders:
    def test_natural(self, petersen):
        assert np.array_equal(natural_order(petersen), np.arange(10))

    def test_random_is_permutation(self, petersen):
        assert _is_permutation(random_order(petersen, seed=0), 10)

    def test_random_deterministic_by_seed(self, petersen):
        a = random_order(petersen, seed=5)
        b = random_order(petersen, seed=5)
        assert np.array_equal(a, b)

    def test_largest_first_sorted_by_degree(self, star8):
        order = largest_first_order(star8)
        assert order[0] == 0  # the hub
        assert _is_permutation(order, 8)

    def test_largest_first_nonincreasing(self, random_graph):
        order = largest_first_order(random_graph)
        deg = random_graph.degrees[order]
        assert np.all(np.diff(deg) <= 0)


class TestSmallestLast:
    def test_is_permutation(self, random_graph):
        order = smallest_last_order(random_graph)
        assert _is_permutation(order, random_graph.num_vertices)

    def test_empty_graph(self):
        from repro.graph import empty_graph

        assert smallest_last_order(empty_graph(0)).shape == (0,)

    def test_back_degree_bounded_by_core_number(self):
        g = erdos_renyi_graph(150, 0.08, seed=7)
        order = smallest_last_order(g)
        pos = np.empty(g.num_vertices, dtype=np.int64)
        pos[order] = np.arange(g.num_vertices)
        k = core_number(g)
        for i, v in enumerate(order):
            back = sum(1 for w in g.neighbors(v) if pos[w] < i)
            assert back <= k

    def test_clique_order_valid(self):
        g = complete_graph(6)
        assert _is_permutation(smallest_last_order(g), 6)

    def test_path_low_back_degree(self):
        g = path_graph(20)
        order = smallest_last_order(g)
        pos = np.empty(20, dtype=np.int64)
        pos[order] = np.arange(20)
        for i, v in enumerate(order):
            back = sum(1 for w in g.neighbors(v) if pos[w] < i)
            assert back <= 1  # path is 1-degenerate


class TestVertexOrderDispatch:
    @pytest.mark.parametrize("name", ["natural", "random", "largest_first", "smallest_last"])
    def test_all_names(self, petersen, name):
        assert _is_permutation(vertex_order(petersen, name, seed=0), 10)

    def test_unknown_name(self, petersen):
        with pytest.raises(ValueError, match="unknown ordering"):
            vertex_order(petersen, "bogus")
