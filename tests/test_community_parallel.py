"""Tests for Grappolo-style parallel Louvain and the pipeline."""

import numpy as np
import pytest

from repro.coloring import greedy_coloring
from repro.community import (
    WeightedGraph,
    modularity,
    parallel_louvain,
    parallel_louvain_phase,
)
from repro.community.pipeline import run_pipeline
from repro.machine import tilegx36


class TestParallelPhase:
    def test_colored_two_cliques(self, two_cliques):
        wg = WeightedGraph.from_csr(two_cliques)
        coloring = greedy_coloring(two_cliques)
        comm, history, trace = parallel_louvain_phase(
            wg, num_threads=4, coloring=coloring)
        assert len(np.unique(comm[:5])) == 1
        assert len(np.unique(comm[5:])) == 1
        assert trace.num_supersteps > 0

    def test_uncolored_reaches_positive_q(self, two_cliques):
        wg = WeightedGraph.from_csr(two_cliques)
        comm, history, trace = parallel_louvain_phase(wg, num_threads=4)
        assert history[-1] > 0

    def test_colored_quality_close_to_serial(self, small_cnr):
        from repro.community import louvain_phase

        wg = WeightedGraph.from_csr(small_cnr)
        _, serial_hist = louvain_phase(wg)
        coloring = greedy_coloring(small_cnr)
        _, colored_hist, _ = parallel_louvain_phase(
            wg, num_threads=8, coloring=coloring)
        assert colored_hist[-1] >= serial_hist[-1] - 0.05

    def test_uncolored_converges_lower_or_slower(self, small_cnr):
        from repro.community import louvain_phase

        wg = WeightedGraph.from_csr(small_cnr)
        _, serial_hist = louvain_phase(wg)
        _, nocol_hist, _ = parallel_louvain_phase(wg, num_threads=8)
        # first-iteration modularity lags serial's (Fig. 1b shape)
        assert nocol_hist[0] <= serial_hist[0] + 1e-9

    def test_coloring_mismatch_rejected(self, small_cnr, path10):
        wg = WeightedGraph.from_csr(small_cnr)
        with pytest.raises(ValueError):
            parallel_louvain_phase(wg, coloring=greedy_coloring(path10))

    def test_trace_charges_shared_reads(self, small_cnr):
        wg = WeightedGraph.from_csr(small_cnr)
        _, _, trace = parallel_louvain_phase(
            wg, num_threads=4, coloring=greedy_coloring(small_cnr))
        assert trace.total_shared_reads > 0


class TestParallelLouvain:
    def test_colored_full_run(self, small_cnr):
        coloring = greedy_coloring(small_cnr)
        res = parallel_louvain(small_cnr, num_threads=8, coloring=coloring)
        assert res.modularity == pytest.approx(
            modularity(small_cnr, res.communities))
        assert res.mode == "colored"
        assert res.trace is not None

    def test_uncolored_full_run(self, small_cnr):
        res = parallel_louvain(small_cnr, num_threads=8)
        assert res.mode == "uncolored"
        assert res.modularity > 0

    def test_quality_close_to_serial(self, small_cnr):
        from repro.community import louvain

        serial_q = louvain(small_cnr).modularity
        colored = parallel_louvain(
            small_cnr, num_threads=8, coloring=greedy_coloring(small_cnr))
        assert colored.modularity >= serial_q - 0.05

    def test_phase1_history_recorded(self, small_cnr):
        res = parallel_louvain(small_cnr, num_threads=4,
                               coloring=greedy_coloring(small_cnr))
        assert len(res.phase1_history) >= 1


class TestPipeline:
    def test_table7_row_fields(self, small_cnr):
        r = run_pipeline(small_cnr, tilegx36(), num_threads=36,
                         input_name="cnr", max_iterations=10)
        assert r.input_name == "cnr"
        assert r.init_coloring_s > 0
        assert r.balancing_s > 0
        assert r.detection_skewed_s > 0
        assert r.detection_balanced_s > 0
        assert 0 < r.modularity_skewed <= 1
        assert 0 < r.modularity_balanced <= 1

    def test_totals_and_savings(self, small_cnr):
        r = run_pipeline(small_cnr, tilegx36(), num_threads=36, max_iterations=10)
        assert r.total_skewed_s == pytest.approx(
            r.init_coloring_s + r.detection_skewed_s)
        assert r.total_balanced_s == pytest.approx(
            r.init_coloring_s + r.balancing_s + r.detection_balanced_s)
        expected = 100 * (1 - r.total_balanced_s / r.total_skewed_s)
        assert r.savings_percent == pytest.approx(expected)

    def test_modularity_preserved_by_balancing(self, small_cnr):
        r = run_pipeline(small_cnr, tilegx36(), num_threads=36, max_iterations=15)
        assert abs(r.modularity_skewed - r.modularity_balanced) < 0.08

    def test_thread_cap_respected(self, small_cnr):
        # asking for more threads than the machine has must not raise
        r = run_pipeline(small_cnr, tilegx36(), num_threads=99, max_iterations=5)
        assert r.detection_skewed_s > 0


class TestMinimumLabelRule:
    def test_adjacent_singletons_do_not_swap(self):
        """Without damping, two adjacent singletons would adopt each
        other's labels forever; the minimum-label rule lets exactly one
        move, so a single edge resolves into one community."""
        from repro.graph import path_graph

        g = path_graph(2)
        res = parallel_louvain(g, num_threads=2)
        assert res.num_communities == 1

    def test_triangle_of_singletons_converges(self):
        from repro.graph import cycle_graph

        g = cycle_graph(3)
        res = parallel_louvain(g, num_threads=3)
        assert res.num_communities >= 1
        assert res.modularity <= 1.0
