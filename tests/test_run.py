"""Tests for the unified execution layer (repro.run).

The parity suite sweeps every (strategy, mode) pair the registry declares
and checks the contract the experiments rely on: proper colorings, color
conservation where promised, balance stats that match a direct
recomputation, and sequential-mode results bit-identical to the legacy
direct calls.
"""

import numpy as np
import pytest

from repro.coloring import (
    STRATEGIES,
    assert_proper,
    balance_coloring,
    balance_report,
    color_and_balance,
    greedy_coloring,
)
from repro.coloring.strategies import MODES, split_seed
from repro.machine import tilegx36
from repro.obs import Recorder
from repro.run import RunConfig, RunResult, execute, supported_runs

ALL_PAIRS = supported_runs()


def _threads_for(mode: str) -> int:
    return {"sequential": 1, "superstep": 4, "mp": 2}[mode]


class TestRegistryDeclaration:
    def test_every_strategy_declares_sequential(self):
        for name, spec in STRATEGIES.items():
            assert spec.sequential is not None, name
            assert "sequential" in spec.modes, name

    def test_modes_are_ordered_and_known(self):
        for name, spec in STRATEGIES.items():
            assert set(spec.modes) <= set(MODES), name
            assert list(spec.modes) == [m for m in MODES if m in spec.modes]

    def test_expected_mode_support(self):
        assert STRATEGIES["greedy-ff"].modes == ("sequential", "superstep", "mp")
        assert STRATEGIES["vff"].modes == ("sequential", "superstep")
        assert STRATEGIES["kempe"].modes == ("sequential",)
        assert STRATEGIES["greedy-lu"].modes == ("sequential",)

    def test_legacy_run_is_sequential_alias(self):
        for name, spec in STRATEGIES.items():
            assert spec.run is spec.sequential, name

    def test_implementation_rejects_unsupported_mode(self):
        with pytest.raises(ValueError, match="does not support mode"):
            STRATEGIES["kempe"].implementation("superstep")

    def test_implementation_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            STRATEGIES["vff"].implementation("quantum")


class TestRegistryParity:
    """The issue's sweep: every strategy × supported mode."""

    @pytest.mark.parametrize("name,mode", ALL_PAIRS)
    def test_proper_and_accounted(self, small_cnr, name, mode):
        spec = STRATEGIES[name]
        r = execute(small_cnr, RunConfig(name, mode=mode,
                                         threads=_threads_for(mode), seed=0))
        # (a) proper coloring
        assert_proper(small_cnr, r.coloring)
        # (b) C-conserving strategies conserve C
        if spec.same_color_count and spec.category == "guided":
            assert r.initial is not None
            assert r.coloring.num_colors == r.initial.num_colors
        # (c) balance stats match a direct recomputation
        assert r.balance == balance_report(r.coloring)
        # result plumbing
        assert isinstance(r, RunResult)
        assert r.wall_s["total"] >= r.wall_s["strategy"] >= 0
        if mode == "superstep":
            assert r.trace is not None
            assert r.trace.num_supersteps >= 1

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_sequential_bit_identical_to_color_and_balance(self, small_cnr, name):
        # (d) sequential execute == the legacy one-call front door
        r = execute(small_cnr, RunConfig(name, seed=0))
        legacy = color_and_balance(small_cnr, name, seed=0)
        np.testing.assert_array_equal(r.coloring.colors, legacy.colors)
        assert r.coloring.num_colors == legacy.num_colors

    def test_sequential_bit_identical_to_direct_calls(self, small_cnr):
        # (d) ... and == the concrete functions, initial included
        from repro.coloring import shuffle_balance

        init = greedy_coloring(small_cnr)
        direct = shuffle_balance(small_cnr, init, choice="lu", traversal="color")
        r = execute(small_cnr, RunConfig("clu"), initial=init)
        np.testing.assert_array_equal(r.coloring.colors, direct.colors)

    def test_superstep_bit_identical_to_direct_calls(self, small_cnr):
        from repro.parallel import parallel_shuffle_balance

        init = greedy_coloring(small_cnr)
        direct = parallel_shuffle_balance(small_cnr, init, num_threads=8)
        r = execute(small_cnr, RunConfig("vff", mode="superstep", threads=8),
                    initial=init)
        np.testing.assert_array_equal(r.coloring.colors, direct.colors)


class TestConfigValidation:
    def test_unknown_strategy(self, small_cnr):
        with pytest.raises(ValueError, match="unknown strategy"):
            execute(small_cnr, RunConfig("quantum"))

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            RunConfig("vff", mode="quantum")

    def test_sequential_rejects_threads(self):
        with pytest.raises(ValueError, match="sequential mode"):
            RunConfig("vff", threads=4)

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError, match="threads"):
            RunConfig("vff", mode="superstep", threads=0)

    def test_bad_weight(self):
        with pytest.raises(ValueError, match="weight"):
            RunConfig("vff", weight="mass")

    def test_unsupported_pair(self, small_cnr):
        with pytest.raises(ValueError, match="does not support mode 'mp'"):
            execute(small_cnr, RunConfig("vff", mode="mp", threads=2))

    def test_bad_backend(self, small_cnr):
        with pytest.raises(ValueError, match="backend"):
            execute(small_cnr, RunConfig("vff", backend="cuda"))

    def test_bad_machine(self, small_cnr):
        with pytest.raises(ValueError, match="unknown machine"):
            execute(small_cnr, RunConfig("vff", machine="cray"))

    def test_machine_core_limit(self, small_cnr):
        with pytest.raises(ValueError, match="cores"):
            execute(small_cnr, RunConfig("vff", mode="superstep", threads=64,
                                         machine="tilegx36"))

    def test_unknown_strategy_option(self, small_cnr):
        with pytest.raises(ValueError, match="'vff'.*unknown option"):
            execute(small_cnr, RunConfig("vff", strategy_kwargs={"bogus": 1}))

    def test_non_default_rounds_rejected_where_unsupported(self, small_cnr):
        with pytest.raises(ValueError, match="does not take rounds"):
            execute(small_cnr, RunConfig("vff", rounds=3))

    def test_ab_initio_rejects_initial(self, small_cnr):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match="ab initio"):
            execute(small_cnr, RunConfig("greedy-lu"), initial=init)

    def test_config_is_frozen(self):
        cfg = RunConfig("vff")
        with pytest.raises(AttributeError):
            cfg.threads = 8
        with pytest.raises(TypeError):
            cfg.strategy_kwargs["x"] = 1


class TestExecuteFeatures:
    def test_rounds_reaches_scheduled(self, small_cnr):
        r = execute(small_cnr, RunConfig("sched-rev", rounds=2))
        assert r.coloring.meta["rounds"] == 2

    def test_weight_reaches_shuffle(self, small_cnr):
        r = execute(small_cnr, RunConfig("vff", weight="degree"))
        assert r.coloring.meta["weight"] == "degree"

    def test_machine_time_priced_for_superstep(self, small_cnr):
        r = execute(small_cnr, RunConfig("vff", mode="superstep", threads=4,
                                         machine="tilegx36"))
        assert r.machine_time is not None
        assert r.machine_time.total_s > 0
        assert "model" in r.summary()

    def test_machine_model_instance_accepted(self, small_cnr):
        r = execute(small_cnr, RunConfig("vff", mode="superstep", threads=4,
                                         machine=tilegx36()))
        assert r.machine_time is not None

    def test_sequential_has_no_machine_time(self, small_cnr):
        r = execute(small_cnr, RunConfig("vff", machine="tilegx36"))
        assert r.trace is None and r.machine_time is None

    def test_precomputed_initial_is_used(self, small_cnr):
        init = greedy_coloring(small_cnr, ordering="smallest_last")
        r = execute(small_cnr, RunConfig("vff"), initial=init)
        assert r.initial is init
        assert r.coloring.num_colors == init.num_colors

    def test_ordering_reaches_initial(self, small_cnr):
        a = execute(small_cnr, RunConfig("vff", ordering="smallest_last"))
        assert a.initial.num_colors == greedy_coloring(
            small_cnr, ordering="smallest_last").num_colors

    def test_ordering_reaches_superstep_greedy_ff(self, small_cnr):
        r = execute(small_cnr, RunConfig("greedy-ff", mode="superstep",
                                         threads=4, ordering="random", seed=3))
        assert_proper(small_cnr, r.coloring)

    def test_backend_reaches_strategy(self, small_cnr):
        r = execute(small_cnr, RunConfig("vff", backend="vectorized"))
        assert r.coloring.meta["backend"] == "vectorized"

    def test_deterministic_for_fixed_seed(self, small_cnr):
        a = execute(small_cnr, RunConfig("kempe", seed=7))
        b = execute(small_cnr, RunConfig("kempe", seed=7))
        np.testing.assert_array_equal(a.coloring.colors, b.coloring.colors)

    def test_recorder_threads_through_both_phases(self, small_cnr):
        rec = Recorder()
        plain = execute(small_cnr, RunConfig("vff", mode="superstep", threads=4))
        traced = execute(small_cnr, RunConfig("vff", mode="superstep", threads=4),
                         recorder=rec)
        assert traced.recorder is rec
        np.testing.assert_array_equal(plain.coloring.colors, traced.coloring.colors)
        kinds = {e["kind"] for e in rec.events}
        assert "coloring" in kinds     # initial greedy-ff
        assert "superstep" in kinds    # the balancing trace


class TestLegacyFrontDoors:
    """The registry wrappers must forward kwargs (PR-3 bugfix)."""

    def test_balance_coloring_forwards_backend(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = balance_coloring(small_cnr, init, "vff", backend="vectorized")
        assert_proper(small_cnr, out)
        assert out.meta["backend"] == "vectorized"
        assert out.num_colors == init.num_colors

    def test_balance_coloring_forwards_rounds(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = balance_coloring(small_cnr, init, "sched-rev", rounds=2)
        assert out.meta["rounds"] == 2

    def test_recoloring_no_longer_chokes_on_seed(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = balance_coloring(small_cnr, init, "recoloring", seed=5)
        assert_proper(small_cnr, out)

    def test_unknown_kwarg_names_the_strategy(self, small_cnr):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match=r"'vff'.*unknown option.*bogus"):
            balance_coloring(small_cnr, init, "vff", bogus=1)

    def test_color_and_balance_checks_kwargs_too(self, small_cnr):
        with pytest.raises(ValueError, match="'kempe'"):
            color_and_balance(small_cnr, "kempe", max_rounds=3)


class TestConfigDictRoundTrip:
    def test_default_config_round_trips(self):
        cfg = RunConfig("greedy-ff")
        assert RunConfig.from_dict(cfg.to_dict()) == cfg

    def test_full_config_round_trips(self):
        cfg = RunConfig(
            "sched-fwd", mode="superstep", threads=8, machine="tilegx36",
            backend="vectorized", ordering="degree", seed=42, rounds=3,
            weight="degree", strategy_kwargs={"fill": "fwd"},
            on_failure="repair", fault_plan="kill@r0.w1;stall@r1.w0:0.5",
        )
        data = cfg.to_dict()
        restored = RunConfig.from_dict(data)
        assert restored == cfg
        assert dict(restored.strategy_kwargs) == {"fill": "fwd"}
        assert restored.fault_plan == cfg.fault_plan

    def test_to_dict_is_json_serializable(self):
        import json

        cfg = RunConfig("vff", mode="superstep", threads=4, seed=7,
                        fault_plan="stick@r1:3")
        assert RunConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg

    def test_machine_instance_serializes_to_registry_name(self):
        cfg = RunConfig("vff", mode="superstep", threads=4, machine=tilegx36())
        assert cfg.to_dict()["machine"] == "tilegx36"

    def test_custom_machine_instance_rejected_by_name(self):
        import dataclasses

        custom = dataclasses.replace(tilegx36(), name="bespoke")
        cfg = RunConfig("vff", mode="superstep", threads=4, machine=custom)
        with pytest.raises(ValueError, match="bespoke"):
            cfg.to_dict()

    def test_non_json_seed_named(self):
        cfg = RunConfig("greedy-ff", seed=np.random.default_rng(0))
        with pytest.raises(ValueError, match="seed"):
            cfg.to_dict()

    def test_non_json_strategy_kwarg_named(self):
        cfg = RunConfig("greedy-ff",
                        strategy_kwargs={"ordering": np.arange(3)})
        with pytest.raises(ValueError, match=r"strategy_kwargs\['ordering'\]"):
            cfg.to_dict()

    def test_fault_plan_with_seed_round_trips(self):
        from repro.resilience import FaultPlan

        plan = FaultPlan.from_spec("corrupt@r0.w1", seed=99)
        cfg = RunConfig("greedy-ff", mode="mp", threads=2, fault_plan=plan)
        data = cfg.to_dict()
        assert data["fault_plan"] == {"spec": "corrupt@r0.w1", "seed": 99}
        assert RunConfig.from_dict(data).fault_plan == plan

    def test_from_dict_unknown_field_named(self):
        with pytest.raises(ValueError, match=r"\['bogus'\]"):
            RunConfig.from_dict({"strategy": "vff", "bogus": 1})

    def test_from_dict_requires_strategy(self):
        with pytest.raises(ValueError, match="'strategy'"):
            RunConfig.from_dict({"mode": "sequential"})

    def test_from_dict_needs_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            RunConfig.from_dict(["vff"])

    @pytest.mark.parametrize("field,value,match", [
        ("threads", "4", "'threads'"),
        ("threads", True, "'threads'"),
        ("rounds", 2.5, "'rounds'"),
        ("mode", 3, "'mode'"),
        ("machine", 7, "'machine'"),
        ("backend", 1, "'backend'"),
        ("strategy_kwargs", [1], "'strategy_kwargs'"),
        ("fault_plan", 5, "'fault_plan'"),
        ("fault_plan", {"spec": "kill@r0.w0", "extra": 1}, "'fault_plan'"),
        ("fault_plan", "garbage", "'fault_plan'"),
    ])
    def test_from_dict_bad_field_named(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            RunConfig.from_dict({"strategy": "vff", field: value})

    def test_partial_dict_uses_defaults(self):
        cfg = RunConfig.from_dict({"strategy": "vff", "seed": 3})
        assert cfg == RunConfig("vff", seed=3)


class TestSeedSplitting:
    def test_split_seed_none_stays_none(self):
        assert split_seed(None) == (None, None)

    def test_split_seed_deterministic(self):
        a1, b1 = split_seed(7)
        a2, b2 = split_seed(7)
        assert a1.integers(0, 2**31) == a2.integers(0, 2**31)
        assert b1.integers(0, 2**31) == b2.integers(0, 2**31)

    def test_split_seed_children_independent(self):
        a, b = split_seed(7)
        assert not np.array_equal(a.integers(0, 2**31, size=16),
                                  b.integers(0, 2**31, size=16))

    def test_initial_and_strategy_streams_decorrelated(self, small_cnr):
        # a random initial ordering and a seed-consuming strategy must not
        # observe the same stream: the initial under the root seed differs
        # from the initial under the split child only if splitting happened
        direct_root = greedy_coloring(small_cnr, choice="ff",
                                      ordering="random", seed=11)
        r = execute(small_cnr, RunConfig("kempe", ordering="random", seed=11))
        child = split_seed(11)[0]
        direct_child = greedy_coloring(small_cnr, choice="ff",
                                       ordering="random", seed=child)
        np.testing.assert_array_equal(r.initial.colors, direct_child.colors)
        assert not np.array_equal(direct_root.colors, direct_child.colors)
