"""Tests for the dataset stand-ins."""

import pytest

from repro.graph import DATASETS, load_dataset
from repro.coloring import greedy_coloring, balance_report

SMALL = 0.05


class TestLoading:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_builds_and_validates(self, name):
        g = load_dataset(name, scale=SMALL, seed=0)
        g.check()
        assert g.num_vertices > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("cnr", scale=0)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic_per_seed(self, name):
        a = load_dataset(name, scale=SMALL, seed=3)
        b = load_dataset(name, scale=SMALL, seed=3)
        assert a == b

    def test_seed_changes_graph(self):
        a = load_dataset("cnr", scale=SMALL, seed=0)
        b = load_dataset("cnr", scale=SMALL, seed=1)
        assert a != b

    def test_scale_grows_graph(self):
        small = load_dataset("europe_osm", scale=0.05, seed=0)
        big = load_dataset("europe_osm", scale=0.2, seed=0)
        assert big.num_vertices > small.num_vertices


class TestQualitativeProperties:
    """The stand-ins must preserve the properties the experiments use."""

    def test_channel_few_colors(self):
        g = load_dataset("channel", scale=0.2, seed=0)
        c = greedy_coloring(g)
        assert c.num_colors <= 16
        assert g.max_degree == 18

    def test_europe_osm_sparse_and_few_colors(self):
        g = load_dataset("europe_osm", scale=0.2, seed=0)
        assert 2 * g.num_edges / g.num_vertices < 2.6
        assert greedy_coloring(g).num_colors <= 8

    def test_ff_skew_on_web_graphs(self):
        for name in ("cnr", "uk2002"):
            g = load_dataset(name, scale=0.1, seed=0)
            r = balance_report(greedy_coloring(g))
            assert r.rsd_percent > 100, f"{name} should be heavily skewed"

    def test_color_count_ordering(self):
        counts = {}
        for name in ("channel", "cnr", "uk2002", "mg2"):
            g = load_dataset(name, scale=0.2, seed=0)
            counts[name] = greedy_coloring(g).num_colors
        assert counts["channel"] < counts["cnr"] < counts["uk2002"] <= counts["mg2"]

    def test_spec_metadata(self):
        for spec in DATASETS.values():
            assert spec.paper_input
            assert spec.description
