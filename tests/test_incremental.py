"""Dynamic-graph subsystem: deltas, immutability, incremental recoloring.

Covers the mutation batch API (canonicalization, validation, digests,
CLI spec parsing), the CSRGraph immutability guarantees the serving
layer's cached fingerprints rely on, and the ``incremental`` strategy:
bit-parity with a full re-color under an unbounded staleness budget,
bounded-budget touch accounting, 1-thread superstep parity, and the
run-layer / CLI wiring.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.coloring import (
    balanced_recoloring,
    carry_forward,
    greedy_coloring,
    incremental_recolor,
    is_proper,
)
from repro.graph import (
    CSRGraph,
    MutationBatch,
    apply_delta,
    erdos_renyi_graph,
    parse_mutation_spec,
    path_graph,
    random_churn,
)
from repro.parallel import parallel_incremental_recolor
from repro.run import RunConfig, execute, mutate, mutation_config

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def graph():
    return erdos_renyi_graph(400, 0.02, seed=11)


@pytest.fixture
def base(graph):
    return greedy_coloring(graph)


# ----------------------------------------------------------------------
# MutationBatch: canonicalization and validation
# ----------------------------------------------------------------------
class TestMutationBatch:
    def test_canonicalizes_orientation_order_and_dupes(self):
        a = MutationBatch.from_edges(add=[(5, 2), (2, 5), (1, 3)])
        b = MutationBatch.from_edges(add=[(1, 3), (2, 5)])
        assert np.array_equal(a.add_u, b.add_u)
        assert np.array_equal(a.add_v, b.add_v)
        assert a.digest() == b.digest()

    def test_digest_distinguishes_add_from_remove(self):
        a = MutationBatch.from_edges(add=[(1, 2)])
        r = MutationBatch.from_edges(remove=[(1, 2)])
        v = MutationBatch.from_edges(add_vertices=1)
        assert len({a.digest(), r.digest(), v.digest()}) == 3

    def test_rejects_self_loop_and_overlap(self):
        with pytest.raises(ValueError, match="self-loop"):
            MutationBatch.from_edges(add=[(3, 3)])
        with pytest.raises(ValueError, match="both add and remove"):
            MutationBatch.from_edges(add=[(1, 2)], remove=[(2, 1)])

    def test_dict_roundtrip_preserves_digest(self):
        batch = MutationBatch.from_edges(add=[(0, 9)], remove=[(4, 6)],
                                         add_vertices=2)
        clone = MutationBatch.from_dict(batch.to_dict())
        assert clone.digest() == batch.digest()
        assert clone.add_vertices == 2

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown delta field"):
            MutationBatch.from_dict({"edges": [[1, 2]]})


# ----------------------------------------------------------------------
# apply_delta: compaction, dirty set, strict validation
# ----------------------------------------------------------------------
class TestApplyDelta:
    def test_add_remove_and_append(self, graph):
        u, v = graph.edge_arrays()
        batch = MutationBatch.from_edges(
            add=[(graph.num_vertices, graph.num_vertices + 1)],
            remove=[(int(u[0]), int(v[0]))], add_vertices=2)
        mutated, dirty = apply_delta(graph, batch)
        mutated.check()
        assert mutated.num_vertices == graph.num_vertices + 2
        assert mutated.num_edges == graph.num_edges  # -1 removed, +1 added
        assert not mutated.has_edge(int(u[0]), int(v[0]))
        assert mutated.has_edge(graph.num_vertices, graph.num_vertices + 1)
        expected_dirty = {int(u[0]), int(v[0]), graph.num_vertices,
                          graph.num_vertices + 1}
        assert expected_dirty == set(dirty.tolist())

    def test_rejects_removing_missing_edge(self):
        g = path_graph(5)
        with pytest.raises(ValueError, match="not in graph"):
            apply_delta(g, MutationBatch.from_edges(remove=[(0, 4)]))

    def test_rejects_adding_existing_edge(self):
        g = path_graph(5)
        with pytest.raises(ValueError, match="already in graph"):
            apply_delta(g, MutationBatch.from_edges(add=[(0, 1)]))

    def test_rejects_out_of_range_endpoints(self):
        g = path_graph(5)
        with pytest.raises(ValueError, match="out of range"):
            apply_delta(g, MutationBatch.from_edges(add=[(0, 7)]))
        # removed edges may not reach appended vertices
        with pytest.raises(ValueError, match="out of range"):
            apply_delta(g, MutationBatch.from_edges(remove=[(0, 5)],
                                                    add_vertices=1))

    def test_random_churn_preserves_density(self, graph):
        batch = random_churn(graph, 0.02, seed=3)
        mutated, dirty = apply_delta(graph, batch)
        assert mutated.num_edges == graph.num_edges
        assert batch.add_u.size == batch.remove_u.size > 0
        assert dirty.size > 0

    def test_churn_deterministic_for_seed(self, graph):
        assert (random_churn(graph, 0.01, seed=5).digest()
                == random_churn(graph, 0.01, seed=5).digest())
        assert (random_churn(graph, 0.01, seed=5).digest()
                != random_churn(graph, 0.01, seed=6).digest())


# ----------------------------------------------------------------------
# CSRGraph immutability (satellite bugfix): the overlay must never
# mutate the base, and cached identity must never go stale
# ----------------------------------------------------------------------
class TestImmutability:
    def test_csr_arrays_are_frozen(self, graph):
        with pytest.raises(ValueError):
            graph.indices[0] = 99
        with pytest.raises(ValueError):
            graph.indptr[0] = 1

    def test_frozen_views_do_not_freeze_caller_arrays(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        CSRGraph(indptr, indices)
        indptr[0] = 0  # caller's own array must stay writeable
        assert indptr.flags.writeable

    def test_delta_derived_graph_gets_fresh_fingerprint(self, graph):
        fp_before = graph.fingerprint()
        mutated, _ = graph.add_vertices(1)
        assert graph.fingerprint() == fp_before  # base cached fp still valid
        assert mutated.fingerprint() != fp_before
        back = np.array_equal(graph.indptr,
                              mutated.indptr[:graph.num_vertices + 1])
        assert back  # base arrays untouched by the overlay

    def test_mutation_methods_leave_base_equal_to_twin(self, graph):
        twin = erdos_renyi_graph(400, 0.02, seed=11)
        u, v = graph.edge_arrays()
        graph.remove_edges([int(u[0])], [int(v[0])])
        graph.add_vertices(3)
        assert graph == twin and hash(graph) == hash(twin)

    def test_pickle_roundtrip_stays_frozen(self, graph):
        import pickle

        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        with pytest.raises(ValueError):
            clone.indices[0] = 99


# ----------------------------------------------------------------------
# incremental recoloring: parity, budget accounting, superstep modes
# ----------------------------------------------------------------------
class TestIncrementalRecolor:
    def test_unbounded_budget_is_bit_identical_to_full_recolor(self, graph, base):
        batch = random_churn(graph, 0.01, seed=2, add_vertices=2)
        mutated, dirty = apply_delta(graph, batch)
        inc = incremental_recolor(mutated, base, dirty=dirty,
                                  staleness_budget=None)
        full = balanced_recoloring(mutated, carry_forward(mutated, base))
        assert np.array_equal(inc.colors, full.colors)
        assert inc.num_colors == full.num_colors
        assert inc.meta["recolored_fraction"] == 1.0

    def test_bounded_budget_is_proper_and_caps_touches(self, graph, base):
        batch = random_churn(graph, 0.01, seed=2)
        mutated, dirty = apply_delta(graph, batch)
        inc = incremental_recolor(mutated, base, dirty=dirty,
                                  staleness_budget=0.05)
        assert is_proper(mutated, inc)
        n = mutated.num_vertices
        touched = inc.meta["seeded"] + inc.meta["repaired"] + inc.meta["moves"]
        assert touched <= max(int(np.ceil(0.05 * n)), 1)
        assert inc.meta["recolored_fraction"] == pytest.approx(touched / n)

    def test_conflict_repair_is_never_budget_limited(self):
        # a dense churn with a microscopic budget must still end proper
        g = erdos_renyi_graph(200, 0.05, seed=1)
        base = greedy_coloring(g)
        batch = random_churn(g, 0.10, seed=4)
        mutated, dirty = apply_delta(g, batch)
        inc = incremental_recolor(mutated, base, dirty=dirty,
                                  staleness_budget=0.001)
        assert is_proper(mutated, inc)

    def test_carry_forward_seeds_new_vertices(self, graph, base):
        mutated, _ = graph.add_vertices(3)
        carried = carry_forward(mutated, base)
        assert np.array_equal(carried.colors[:graph.num_vertices], base.colors)
        assert carried.meta["seeded_vertices"] == 3
        assert is_proper(mutated, carried)  # no added edges => stays proper

    def test_edge_removal_only_never_conflicts(self, graph, base):
        u, v = graph.edge_arrays()
        batch = MutationBatch.from_edges(remove=[(int(u[i]), int(v[i]))
                                                 for i in range(5)])
        mutated, dirty = apply_delta(graph, batch)
        inc = incremental_recolor(mutated, base, dirty=dirty,
                                  staleness_budget=0.05)
        assert inc.meta["repaired"] == 0
        assert is_proper(mutated, inc)

    def test_invalid_budget_rejected(self, graph, base):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="staleness_budget"):
                incremental_recolor(graph, base, dirty=[0],
                                    staleness_budget=bad)

    def test_superstep_one_thread_matches_sequential(self, graph, base):
        batch = random_churn(graph, 0.02, seed=8, add_vertices=1)
        mutated, dirty = apply_delta(graph, batch)
        seq = incremental_recolor(mutated, base, dirty=dirty,
                                  staleness_budget=0.05)
        par = parallel_incremental_recolor(mutated, base, dirty=dirty,
                                           staleness_budget=0.05,
                                           num_threads=1)
        assert np.array_equal(seq.colors, par.colors)

    def test_superstep_many_threads_proper_with_trace(self, graph, base):
        batch = random_churn(graph, 0.02, seed=8)
        mutated, dirty = apply_delta(graph, batch)
        par = parallel_incremental_recolor(mutated, base, dirty=dirty,
                                           staleness_budget=0.05,
                                           num_threads=8)
        assert is_proper(mutated, par)
        assert par.meta["trace"].supersteps  # speculation actually ran


# ----------------------------------------------------------------------
# run layer and CLI wiring
# ----------------------------------------------------------------------
class TestRunLayer:
    def test_mutate_returns_full_run_result(self, graph):
        base = execute(graph, RunConfig("vff", seed=0))
        batch = random_churn(graph, 0.01, seed=1)
        mutated, result = mutate(graph, base.coloring, batch,
                                 staleness_budget=0.05)
        assert result.config.strategy == "incremental"
        assert is_proper(mutated, result.coloring)
        assert result.balance.rsd_percent >= 0.0

    def test_mutation_config_is_json_roundtrippable(self):
        cfg = mutation_config([3, 1, 2], staleness_budget=0.1)
        clone = RunConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.strategy_kwargs["dirty"] == [3, 1, 2]

    def test_incremental_in_registry_both_modes(self, graph):
        from repro.coloring import STRATEGIES

        spec = STRATEGIES["incremental"]
        assert spec.category == "guided"
        assert set(spec.modes) == {"sequential", "superstep"}

    def test_parse_mutation_spec_explicit_and_churn(self, graph):
        batch = parse_mutation_spec("remove=; vertices=2", graph)
        assert batch.add_vertices == 2 and batch.is_empty is False
        churn = parse_mutation_spec("churn=0.01", graph, seed=0)
        assert churn.remove_u.size > 0
        with pytest.raises(ValueError, match="cannot be combined"):
            parse_mutation_spec("churn=0.01;vertices=1", graph)
        with pytest.raises(ValueError, match="unknown mutation clause"):
            parse_mutation_spec("drop=1-2", graph)

    @pytest.mark.slow
    def test_cli_mutate_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--strategy", "vff",
             "--scale", "0.05", "--mutate", "churn=0.01",
             "--staleness-budget", "0.05"],
            capture_output=True, text=True, timeout=300, cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "incremental" in proc.stdout
        assert "recolored_fraction" in proc.stdout
