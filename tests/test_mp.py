"""Tests for the real multiprocessing coloring backend."""

import numpy as np
import pytest

from repro.coloring import assert_proper, greedy_coloring
from repro.parallel.mp import mp_greedy_ff


class TestMpGreedyFF:
    def test_one_worker_matches_sequential(self, small_cnr):
        seq = greedy_coloring(small_cnr)
        par = mp_greedy_ff(small_cnr, num_workers=1)
        assert np.array_equal(seq.colors, par.colors)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_proper_with_workers(self, small_cnr, workers):
        c = mp_greedy_ff(small_cnr, num_workers=workers)
        assert_proper(small_cnr, c)
        assert c.num_colors <= small_cnr.max_degree + 1

    def test_deterministic_per_worker_count(self, small_cnr):
        a = mp_greedy_ff(small_cnr, num_workers=2)
        b = mp_greedy_ff(small_cnr, num_workers=2)
        assert np.array_equal(a.colors, b.colors)

    def test_meta_records_rounds(self, small_cnr):
        c = mp_greedy_ff(small_cnr, num_workers=2)
        assert c.meta["workers"] == 2
        assert c.meta["rounds"] >= 1

    def test_invalid_workers(self, small_cnr):
        with pytest.raises(ValueError):
            mp_greedy_ff(small_cnr, num_workers=0)

    def test_path_graph(self, path10):
        c = mp_greedy_ff(path10, num_workers=2)
        assert_proper(path10, c)
        assert c.num_colors <= 3
