"""Tests for the serving subsystem (repro.serve).

Everything here drives the service in-process — no sockets — so results
are deterministic: the same jobs at the same seeds must produce
bit-identical colorings whether computed, deduplicated against an
identical in-flight job, or served from the cache (memory or disk).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.serve.backends as backends_mod
from repro.graph import cycle_graph, erdos_renyi_graph, path_graph
from repro.run import RunConfig, execute
from repro.serve import (
    AdmissionError,
    ColoringService,
    ResultCache,
    SubmissionQueue,
    config_fingerprint,
    graph_fingerprint,
    job_key,
)
from repro.serve.api import dispatch

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def graph():
    return erdos_renyi_graph(300, 0.03, seed=7)


@pytest.fixture
def counted_execute(monkeypatch):
    """Patch the scheduler's execute with a call-counting wrapper."""
    calls: list[RunConfig] = []
    real = backends_mod.execute

    def counting(graph, config, *, initial=None):
        calls.append(config)
        return real(graph, config, initial=initial)

    monkeypatch.setattr(backends_mod, "execute", counting)
    return calls


# ----------------------------------------------------------------------
# fingerprints and cache keys
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_equal_content_equal_key(self, graph):
        other = erdos_renyi_graph(300, 0.03, seed=7)
        cfg = RunConfig("greedy-ff", seed=1)
        assert graph_fingerprint(graph) == graph_fingerprint(other)
        assert job_key(graph, cfg) == job_key(other, cfg)

    def test_graph_content_changes_key(self, graph):
        other = erdos_renyi_graph(300, 0.03, seed=8)
        assert graph_fingerprint(graph) != graph_fingerprint(other)

    def test_config_changes_key(self, graph):
        a = job_key(graph, RunConfig("greedy-ff", seed=1))
        b = job_key(graph, RunConfig("greedy-ff", seed=2))
        c = job_key(graph, RunConfig("vff", seed=1))
        assert len({a, b, c}) == 3

    def test_config_fingerprint_ignores_kwargs_order(self, graph):
        a = RunConfig("sched-fwd", strategy_kwargs={"fill": "fwd", "rounds": 2})
        b = RunConfig("sched-fwd", strategy_kwargs={"rounds": 2, "fill": "fwd"})
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_stable_across_processes(self):
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.graph import erdos_renyi_graph\n"
            "from repro.run import RunConfig\n"
            "from repro.serve import job_key\n"
            "g = erdos_renyi_graph(300, 0.03, seed=7)\n"
            "print(job_key(g, RunConfig('vff', mode='superstep', threads=4,"
            " seed=3)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=REPO_ROOT, timeout=120, check=True,
        ).stdout.strip()
        g = erdos_renyi_graph(300, 0.03, seed=7)
        here = job_key(g, RunConfig("vff", mode="superstep", threads=4, seed=3))
        assert out == here


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    @staticmethod
    def _results(n):
        g = path_graph(100)
        return [(job_key(g, RunConfig("greedy-ff", seed=i)),
                 execute(g, RunConfig("greedy-ff", seed=i)))
                for i in range(n)]

    def test_hit_returns_same_object(self):
        (key, result), = self._results(1)
        cache = ResultCache()
        cache.put(key, result)
        assert cache.get(key) is result
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0

    def test_lru_eviction_under_byte_budget(self):
        pairs = self._results(3)
        one_entry = 100 * 8 + 512  # colors + fixed overhead (ab initio: no initial)
        cache = ResultCache(max_bytes=2 * one_entry)
        for key, result in pairs:
            cache.put(key, result)
        assert cache.get(pairs[0][0]) is None  # oldest evicted
        assert cache.get(pairs[1][0]) is not None
        assert cache.get(pairs[2][0]) is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["bytes"] <= cache.max_bytes

    def test_get_refreshes_recency(self):
        pairs = self._results(3)
        one_entry = 100 * 8 + 512
        cache = ResultCache(max_bytes=2 * one_entry)
        cache.put(pairs[0][0], pairs[0][1])
        cache.put(pairs[1][0], pairs[1][1])
        cache.get(pairs[0][0])  # touch: now pairs[1] is LRU
        cache.put(pairs[2][0], pairs[2][1])
        assert cache.get(pairs[0][0]) is not None
        assert cache.get(pairs[1][0]) is None

    def test_disk_spill_roundtrip(self, tmp_path):
        pairs = self._results(3)
        one_entry = 100 * 8 + 512
        cache = ResultCache(max_bytes=2 * one_entry, spill_dir=tmp_path)
        for key, result in pairs:
            cache.put(key, result)
        assert cache.stats()["spills"] == 1
        restored = cache.get(pairs[0][0])
        assert restored is not None
        assert np.array_equal(restored.coloring.colors,
                              pairs[0][1].coloring.colors)
        assert restored.coloring.meta["served_from"] == "disk"
        assert restored.config == pairs[0][1].config
        assert restored.balance.rsd_percent == pairs[0][1].balance.rsd_percent
        assert cache.stats()["disk_hits"] == 1

    def test_spill_survives_new_cache_instance(self, tmp_path):
        (key, result), = self._results(1)
        cache = ResultCache(max_bytes=1, spill_dir=tmp_path)
        cache.put(key, result)  # over budget: spilled and evicted immediately
        fresh = ResultCache(spill_dir=tmp_path)
        restored = fresh.get(key)
        assert restored is not None
        assert np.array_equal(restored.coloring.colors, result.coloring.colors)

    def test_miss_counts(self):
        cache = ResultCache()
        assert cache.get("0" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_counters_reach_recorder(self):
        from repro.obs import Recorder

        rec = Recorder()
        (key, result), = self._results(1)
        cache = ResultCache(recorder=rec)
        cache.get(key)
        cache.put(key, result)
        cache.get(key)
        assert rec.counters["serve.cache.misses"] == 1
        assert rec.counters["serve.cache.hits"] == 1

    def test_rejects_non_result(self):
        with pytest.raises(TypeError, match="RunResult"):
            ResultCache().put("k", object())

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(max_bytes=0)


# ----------------------------------------------------------------------
# admission queue
# ----------------------------------------------------------------------
class TestSubmissionQueue:
    def test_backpressure_rejects_with_reason(self, graph):
        q = SubmissionQueue(max_pending=2)
        q.submit(graph, RunConfig("greedy-ff", seed=0))
        q.submit(graph, RunConfig("greedy-ff", seed=1))
        with pytest.raises(AdmissionError, match="queue full.*limit 2"):
            q.submit(graph, RunConfig("greedy-ff", seed=2))
        stats = q.stats()
        assert stats["rejections"] == 1
        assert stats["rejections_full"] == 1
        assert stats["rejections_invalid"] == 0

    def test_slot_freed_after_terminal(self, graph):
        q = SubmissionQueue(max_pending=1)
        job = q.submit(graph, RunConfig("greedy-ff", seed=0))
        (taken,) = q.take_batch()
        taken.status = "done"
        q.mark_terminal(taken)
        assert job is taken
        q.submit(graph, RunConfig("greedy-ff", seed=1))  # no AdmissionError

    def test_unknown_strategy_rejected(self, graph):
        q = SubmissionQueue()
        with pytest.raises(AdmissionError, match="unknown strategy"):
            q.submit(graph, RunConfig("nope"))
        assert q.stats()["rejections_invalid"] == 1

    def test_unsupported_mode_rejected(self, graph):
        q = SubmissionQueue()
        with pytest.raises(AdmissionError, match="does not support mode"):
            q.submit(graph, RunConfig("kempe", mode="mp", threads=2))

    def test_invalid_submission_takes_no_slot(self, graph):
        q = SubmissionQueue(max_pending=1)
        with pytest.raises(AdmissionError):
            q.submit(graph, RunConfig("nope"))
        q.submit(graph, RunConfig("greedy-ff", seed=0))

    def test_mark_terminal_requires_terminal_status(self, graph):
        q = SubmissionQueue()
        job = q.submit(graph, RunConfig("greedy-ff", seed=0))
        with pytest.raises(ValueError, match="not terminal"):
            q.mark_terminal(job)


# ----------------------------------------------------------------------
# scheduler + service
# ----------------------------------------------------------------------
class TestService:
    def test_dedup_two_identical_jobs_one_execute(self, graph, counted_execute):
        svc = ColoringService()
        cfg = RunConfig("greedy-ff", seed=5)
        j1 = svc.submit(graph, cfg)
        j2 = svc.submit(graph, cfg)
        svc.process()
        assert len(counted_execute) == 1
        assert j1.status == j2.status == "done"
        assert j1.source == "computed" and j2.source == "dedup"
        assert np.array_equal(j1.result.coloring.colors,
                              j2.result.coloring.colors)

    def test_cache_hit_bit_parity_with_fresh_execute(self, graph):
        svc = ColoringService()
        cfg = RunConfig("vff", mode="superstep", threads=4, seed=9)
        first = svc.submit_and_wait(graph, cfg)
        second = svc.submit_and_wait(graph, cfg)
        direct = execute(graph, cfg)
        assert first.source == "computed" and second.source == "cache"
        assert np.array_equal(first.result.coloring.colors,
                              direct.coloring.colors)
        assert np.array_equal(second.result.coloring.colors,
                              direct.coloring.colors)

    def test_disk_cache_hit_bit_parity(self, graph, tmp_path, counted_execute):
        cfg = RunConfig("greedy-ff", seed=2)
        svc = ColoringService(max_bytes=1, spill_dir=tmp_path)
        svc.submit_and_wait(graph, cfg)
        job = svc.submit_and_wait(graph, cfg)
        assert job.source == "cache"
        assert job.result.coloring.meta["served_from"] == "disk"
        assert len(counted_execute) == 1
        assert np.array_equal(job.result.coloring.colors,
                              execute(graph, cfg).coloring.colors)

    def test_failed_job_reports_error_and_frees_slot(self, graph, monkeypatch):
        def boom(graph, config, *, initial=None):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(backends_mod, "execute", boom)
        svc = ColoringService(max_pending=1)
        job = svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert job.status == "failed"
        assert "worker exploded" in job.error
        assert svc.stats()["scheduler"]["failures"] == 1
        assert svc.queue.in_flight == 0

    def test_failure_not_cached(self, graph, monkeypatch):
        calls = []
        real = backends_mod.execute

        def flaky(graph, config, *, initial=None):
            calls.append(config)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return real(graph, config, initial=initial)

        monkeypatch.setattr(backends_mod, "execute", flaky)
        svc = ColoringService()
        cfg = RunConfig("greedy-ff", seed=0)
        assert svc.submit_and_wait(graph, cfg).status == "failed"
        retry = svc.submit_and_wait(graph, cfg)
        assert retry.status == "done" and retry.source == "computed"

    def test_threaded_pool_matches_sequential(self, graph):
        configs = [RunConfig("greedy-ff", seed=i) for i in range(6)]
        seq = ColoringService(workers=1)
        par = ColoringService(workers=4)
        seq_jobs = [seq.submit(graph, c) for c in configs]
        par_jobs = [par.submit(graph, c) for c in configs]
        seq.process()
        par.process()
        for a, b in zip(seq_jobs, par_jobs):
            assert np.array_equal(a.result.coloring.colors,
                                  b.result.coloring.colors)

    def test_pump_thread_resolves_jobs(self, graph):
        svc = ColoringService()
        svc.start()
        try:
            job = svc.submit(graph, RunConfig("greedy-ff", seed=1))
            for _ in range(2000):
                if job.finished:
                    break
                import time

                time.sleep(0.005)
            assert job.status == "done"
        finally:
            svc.stop()
        assert svc.healthz()["pump"] is False

    def test_acceptance_100_jobs_10_pairs(self, counted_execute):
        """The ISSUE acceptance workload: 100 jobs, 10 pairs, 10 executes."""
        graphs = [erdos_renyi_graph(200, 0.04, seed=s) for s in (0, 1)]
        configs = [RunConfig("greedy-ff", seed=s) for s in range(5)]
        pairs = [(g, c) for g in graphs for c in configs]  # 10 distinct
        direct = {job_key(g, c): execute(g, c) for g, c in pairs}

        svc = ColoringService()
        jobs = []
        # 10 waves of the same 10 pairs; process every second wave so both
        # in-flight dedup and cache hits are exercised.
        for wave in range(10):
            for g, c in pairs:
                jobs.append(svc.submit(g, c))
            if wave % 2 == 1:
                svc.process()
        svc.process()

        assert len(jobs) == 100
        assert len(counted_execute) == 10  # exactly one per distinct pair
        for job in jobs:
            assert job.status == "done"
            assert np.array_equal(job.result.coloring.colors,
                                  direct[job.key].coloring.colors)

        stats = svc.stats()
        sched, cache, queue = stats["scheduler"], stats["cache"], stats["queue"]
        assert queue["submitted"] == 100
        assert queue["rejections"] == 0
        assert sched["executed"] == 10
        assert sched["resolved"] == 100
        assert sched["executed"] + sched["cache_hits"] + sched["dedup_hits"] == 100
        # every job probed the cache exactly once: hits resolve as cache
        # hits, misses split into primaries (executed) and dedup followers
        assert cache["hits"] == sched["cache_hits"]
        assert cache["misses"] == sched["executed"] + sched["dedup_hits"]
        assert cache["evictions"] == 0


# ----------------------------------------------------------------------
# HTTP protocol (socketless, via dispatch)
# ----------------------------------------------------------------------
class TestDispatch:
    def _submit_body(self, **config):
        cfg = {"strategy": "greedy-ff", "seed": 0}
        cfg.update(config)
        return {"input": "cnr", "scale": 0.05, "seed": 0, "config": cfg}

    def test_submit_result_stats_healthz(self):
        svc = ColoringService()
        status, reply = dispatch(svc, "POST", "/submit", self._submit_body())
        assert status == 202
        assert reply["status"] == "pending"
        svc.process()
        status, result = dispatch(svc, "GET", f"/result/{reply['job_id']}")
        assert status == 200
        assert result["status"] == "done" and result["source"] == "computed"
        assert result["num_colors"] >= 1
        status, stats = dispatch(svc, "GET", "/stats")
        assert status == 200 and stats["scheduler"]["executed"] == 1
        status, health = dispatch(svc, "GET", "/healthz")
        assert status == 200 and health["status"] == "live"
        assert health["live"] is True and health["degraded"] is False

    def test_result_includes_colors_on_request(self):
        svc = ColoringService()
        _, reply = dispatch(svc, "POST", "/submit", self._submit_body())
        svc.process()
        _, result = dispatch(svc, "GET", f"/result/{reply['job_id']}?colors=1")
        assert isinstance(result["colors"], list)
        assert len(result["colors"]) == result["num_vertices"]

    def test_bad_strategy_is_400(self):
        svc = ColoringService()
        status, reply = dispatch(svc, "POST", "/submit",
                                 self._submit_body(strategy="nope"))
        assert status == 400 and "unknown strategy" in reply["error"]

    def test_unknown_config_field_is_400(self):
        svc = ColoringService()
        status, reply = dispatch(svc, "POST", "/submit",
                                 self._submit_body(bogus=1))
        assert status == 400 and "bogus" in reply["error"]

    def test_unknown_input_is_400(self):
        svc = ColoringService()
        body = self._submit_body()
        body["input"] = "no-such-graph"
        status, reply = dispatch(svc, "POST", "/submit", body)
        assert status == 400 and "no-such-graph" in reply["error"]

    def test_queue_full_is_429(self):
        svc = ColoringService(max_pending=1)
        assert dispatch(svc, "POST", "/submit", self._submit_body())[0] == 202
        status, reply = dispatch(svc, "POST", "/submit", self._submit_body(seed=1))
        assert status == 429 and "queue full" in reply["error"]

    def test_unknown_job_is_404(self):
        assert dispatch(ColoringService(), "GET", "/result/999")[0] == 404

    def test_non_integer_job_id_is_400(self):
        assert dispatch(ColoringService(), "GET", "/result/abc")[0] == 400

    def test_unknown_route_is_404(self):
        assert dispatch(ColoringService(), "GET", "/nope")[0] == 404


# ----------------------------------------------------------------------
# real HTTP server (one end-to-end socket round-trip)
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_end_to_end_roundtrip(self):
        import threading

        from repro.serve.api import (
            fetch_json,
            make_server,
            submit_job,
            wait_for_result,
        )

        svc = ColoringService()
        svc.start()
        server = make_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            body = {"input": "cnr", "scale": 0.05, "seed": 0,
                    "config": {"strategy": "greedy-ff", "seed": 0}}
            first = submit_job(base, body)
            done = wait_for_result(base, first["job_id"], timeout=60)
            assert done["status"] == "done"
            second = submit_job(base, body)
            done2 = wait_for_result(base, second["job_id"], timeout=60)
            assert done2["source"] == "cache"
            assert fetch_json(base, "/healthz")["status"] == "ready"
            assert fetch_json(base, "/stats")["scheduler"]["executed"] == 1
        finally:
            server.shutdown()
            svc.stop()


# ----------------------------------------------------------------------
# batching / grouping behavior
# ----------------------------------------------------------------------
class TestBatching:
    def test_batch_size_limits_round(self, graph):
        svc = ColoringService(batch_size=2)
        for seed in range(5):
            svc.submit(graph, RunConfig("greedy-ff", seed=seed))
        assert svc.scheduler.run_round() == 2
        assert svc.queue.pending_count == 3
        svc.process()
        assert svc.queue.pending_count == 0

    def test_mixed_modes_grouped_and_resolved(self, counted_execute):
        g = cycle_graph(60)
        svc = ColoringService(workers=2)
        configs = [
            RunConfig("greedy-ff", seed=0),
            RunConfig("vff", mode="superstep", threads=2, seed=0),
            RunConfig("greedy-ff", seed=1),
            RunConfig("vff", mode="superstep", threads=4, seed=0),
        ]
        jobs = [svc.submit(g, c) for c in configs]
        svc.process()
        assert [j.status for j in jobs] == ["done"] * 4
        assert len(counted_execute) == 4
        for job, cfg in zip(jobs, configs):
            assert np.array_equal(job.result.coloring.colors,
                                  execute(g, cfg).coloring.colors)


# ----------------------------------------------------------------------
# cache spill lifecycle fixes: purge-on-clear and the restore race
# ----------------------------------------------------------------------
class TestSpillLifecycle:
    @staticmethod
    def _spilled_cache(tmp_path, n=1):
        """A roomy cache whose *n* entries all live on disk only.

        A throwaway 1-byte cache forces the spill; the returned cache has
        the default budget, so a disk-restored entry actually stays
        resident instead of being re-evicted on admit.
        """
        g = path_graph(100)
        pairs = [(job_key(g, RunConfig("greedy-ff", seed=i)),
                  execute(g, RunConfig("greedy-ff", seed=i)))
                 for i in range(n)]
        writer = ResultCache(max_bytes=1, spill_dir=tmp_path)
        for key, result in pairs:
            writer.put(key, result)  # over budget: spilled, evicted at once
        return ResultCache(spill_dir=tmp_path), pairs

    def test_clear_alone_lets_spilled_results_resurrect(self, tmp_path):
        # Regression baseline for the bug: clear() empties memory but the
        # .npz spill survives, so a "cleared" result comes back from disk.
        cache, pairs = self._spilled_cache(tmp_path)
        cache.clear()
        assert cache.get(pairs[0][0]) is not None

    def test_clear_purge_spill_kills_resurrection(self, tmp_path):
        cache, pairs = self._spilled_cache(tmp_path, n=2)
        assert list(tmp_path.glob("*.npz"))
        cache.clear(purge_spill=True)
        assert not list(tmp_path.glob("*.npz"))
        assert cache.get(pairs[0][0]) is None
        assert cache.get(pairs[1][0]) is None

    def test_purge_also_removes_stale_tmp_files(self, tmp_path):
        cache, _ = self._spilled_cache(tmp_path)
        (tmp_path / "deadbeef.npz.tmp").write_bytes(b"partial write")
        cache.clear(purge_spill=True)
        assert not list(tmp_path.glob("*.npz*"))

    def test_service_stop_can_purge_spill(self, graph, tmp_path):
        svc = ColoringService(max_bytes=1, spill_dir=tmp_path)
        svc.submit_and_wait(graph, RunConfig("greedy-ff", seed=0))
        assert list(tmp_path.glob("*.npz"))
        svc.stop(purge_spill=True)
        assert not list(tmp_path.glob("*.npz"))

    def test_memory_miss_disk_hit_counts_as_miss(self, tmp_path):
        # Regression: the disk-rescued path used to skip the miss counter,
        # so gets != hits + misses and hit-rate lied upward.
        cache, pairs = self._spilled_cache(tmp_path)
        restored = cache.get(pairs[0][0])
        assert restored is not None
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["disk_hits"] == 1

    def test_stats_identity_holds_across_mixed_traffic(self, tmp_path):
        cache, pairs = self._spilled_cache(tmp_path)
        cache.get(pairs[0][0])      # memory miss, disk hit (admits)
        cache.get(pairs[0][0])      # memory hit
        cache.get("f" * 64)         # clean miss
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 3
        assert stats["disk_hits"] <= stats["misses"]

    def test_concurrent_restore_hammer_single_admit(self, tmp_path):
        # Regression for the get() race: _load_spilled ran outside the
        # lock, so two threads could both restore and both admit.  With
        # the under-lock re-check exactly one loads from disk, everyone
        # else adopts that entry, and the counters are deterministic.
        import threading

        cache, pairs = self._spilled_cache(tmp_path)
        key, original = pairs[0]
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads

        def worker(i):
            barrier.wait()
            results[i] = cache.get(key)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r is not None for r in results)
        first = results[0]
        assert all(r is first for r in results)  # single admitted object
        assert np.array_equal(first.coloring.colors,
                              original.coloring.colors)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["disk_hits"] == 1
        assert stats["hits"] == n_threads - 1
        assert stats["entries"] == 1


# ----------------------------------------------------------------------
# POST /mutate: incremental re-color of a finished job's graph
# ----------------------------------------------------------------------
class TestMutate:
    @staticmethod
    def _delta(graph, seed=0):
        from repro.graph import random_churn

        return random_churn(graph, 0.01, seed=seed)

    @staticmethod
    def _submit_base(svc, graph):
        job = svc.submit_and_wait(graph, RunConfig("vff", seed=3))
        assert job.status == "done"
        return job

    def test_mutate_produces_proper_coloring(self, graph):
        from repro.coloring import is_proper
        from repro.graph import apply_delta

        svc = ColoringService()
        base = self._submit_base(svc, graph)
        batch = self._delta(graph)
        job = svc.mutate_and_wait(base.id, batch, staleness_budget=0.05)
        assert job.status == "done"
        mutated, _ = apply_delta(graph, batch)
        assert is_proper(mutated, job.result.coloring)
        assert job.result.config.strategy == "incremental"
        assert job.meta["base_job_id"] == base.id
        assert job.meta["delta_digest"] == batch.digest()

    def test_same_delta_hits_cache_different_delta_misses(self, graph,
                                                          counted_execute):
        svc = ColoringService()
        base = self._submit_base(svc, graph)
        j1 = svc.mutate_and_wait(base.id, self._delta(graph, seed=0))
        j2 = svc.mutate_and_wait(base.id, self._delta(graph, seed=0))
        j3 = svc.mutate_and_wait(base.id, self._delta(graph, seed=1))
        assert j1.key == j2.key != j3.key
        assert j1.source == "computed" and j2.source == "cache"
        assert j3.source == "computed"
        assert len(counted_execute) == 3  # base + two distinct mutations
        assert np.array_equal(j1.result.coloring.colors,
                              j2.result.coloring.colors)

    def test_unbounded_budget_matches_full_recolor_bitwise(self, graph):
        from repro.coloring import balanced_recoloring, carry_forward
        from repro.graph import apply_delta

        svc = ColoringService()
        base = self._submit_base(svc, graph)
        batch = self._delta(graph)
        job = svc.mutate_and_wait(base.id, batch, staleness_budget=None)
        mutated, _ = apply_delta(graph, batch)
        full = balanced_recoloring(
            mutated, carry_forward(mutated, base.result.coloring))
        assert np.array_equal(job.result.coloring.colors, full.colors)

    def test_chained_mutations(self, graph):
        from repro.coloring import is_proper
        from repro.graph import apply_delta

        svc = ColoringService()
        base = self._submit_base(svc, graph)
        b1 = self._delta(graph, seed=0)
        j1 = svc.mutate_and_wait(base.id, b1)
        g1, _ = apply_delta(graph, b1)
        b2 = self._delta(g1, seed=1)
        j2 = svc.mutate_and_wait(j1.id, b2)
        g2, _ = apply_delta(g1, b2)
        assert j2.status == "done"
        assert is_proper(g2, j2.result.coloring)
        assert j2.meta["base_job_id"] == j1.id

    def test_mutate_error_codes(self, graph):
        from repro.serve import MutationError

        svc = ColoringService()
        with pytest.raises(MutationError) as exc:
            svc.mutate(999, self._delta(graph))
        assert exc.value.status == 404
        pending = svc.submit(graph, RunConfig("vff", seed=3))
        with pytest.raises(MutationError) as exc:
            svc.mutate(pending.id, self._delta(graph))
        assert exc.value.status == 409

    def test_dispatch_mutate_end_to_end(self):
        # Full protocol pass through the socketless router.
        svc = ColoringService()
        status, sub = dispatch(svc, "POST", "/submit", {
            "input": "cnr", "scale": 0.05, "seed": 0,
            "config": {"strategy": "vff", "seed": 0}})
        assert status == 202
        svc.process()
        batch = {"add_vertices": 2, "add_edges": [], "remove_edges": []}
        status, rep = dispatch(svc, "POST", "/mutate", {
            "base_job_id": sub["job_id"], "delta": batch,
            "staleness_budget": 0.05})
        assert status == 202
        assert rep["base_job_id"] == sub["job_id"]
        assert rep["dirty_vertices"] == 2
        svc.process()
        status, result = dispatch(svc, "GET", f"/result/{rep['job_id']}")
        assert status == 200 and result["status"] == "done"

    def test_dispatch_mutate_rejects_bad_requests(self, graph):
        svc = ColoringService()
        base = self._submit_base(svc, graph)
        cases = [
            ({"delta": {"add_vertices": 1}}, 400),            # no base id
            ({"base_job_id": 999, "delta": {"add_vertices": 1}}, 404),
            ({"base_job_id": base.id}, 400),                  # no delta
            ({"base_job_id": base.id,
              "delta": {"bogus": 1}}, 400),                   # bad delta field
            ({"base_job_id": base.id, "delta": {"add_vertices": 1},
              "nope": True}, 400),                            # unknown field
            ({"base_job_id": base.id,
              "delta": {"remove_edges": [[0, 299]]}}, 400),   # likely absent
        ]
        for body, want in cases:
            status, payload = dispatch(svc, "POST", "/mutate", body)
            if want == 400 and status == 202:
                continue  # the "likely absent" edge happened to exist
            assert status == want, (body, payload)
            assert "error" in payload
