"""Property-based tests (hypothesis) for the core invariants.

Random graphs are generated from edge lists; every strategy must produce a
proper coloring with its documented color-count guarantee, parallel p=1
runs must equal the sequential references, and the community substrate
must conserve weight under aggregation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    balanced_recoloring,
    greedy_coloring,
    is_proper,
    iterated_greedy,
    scheduled_balance,
    shuffle_balance,
)
from repro.community import WeightedGraph, aggregate, modularity
from repro.graph import from_edge_arrays
from repro.parallel import (
    parallel_greedy_ff,
    parallel_recoloring,
    parallel_scheduled_balance,
    parallel_shuffle_balance,
)

MAX_N = 40


@st.composite
def graphs(draw):
    """A random simple graph with up to MAX_N vertices."""
    n = draw(st.integers(min_value=2, max_value=MAX_N))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    u = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    v = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edge_arrays(np.asarray(u, dtype=np.int64),
                            np.asarray(v, dtype=np.int64), num_vertices=n)


@settings(max_examples=60, deadline=None)
@given(graphs(), st.sampled_from(["ff", "lu"]))
def test_greedy_proper_and_bounded(g, choice):
    c = greedy_coloring(g, choice=choice)
    assert is_proper(g, c)
    assert c.num_colors <= g.max_degree + 1


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_greedy_random_proper(g, seed):
    c = greedy_coloring(g, choice="random", seed=seed)
    assert is_proper(g, c)
    assert c.num_colors <= g.max_degree + 1


@settings(max_examples=40, deadline=None)
@given(graphs(), st.sampled_from(["natural", "random", "largest_first", "smallest_last"]))
def test_greedy_ff_any_ordering(g, ordering):
    c = greedy_coloring(g, ordering=ordering, seed=0)
    assert is_proper(g, c)


@settings(max_examples=40, deadline=None)
@given(graphs(), st.sampled_from(["ff", "lu"]), st.sampled_from(["vertex", "color"]))
def test_shuffle_proper_same_colors(g, choice, traversal):
    init = greedy_coloring(g)
    out = shuffle_balance(g, init, choice=choice, traversal=traversal)
    assert is_proper(g, out)
    assert out.num_colors == init.num_colors


@settings(max_examples=40, deadline=None)
@given(graphs(), st.booleans())
def test_scheduled_proper_same_colors(g, reverse):
    init = greedy_coloring(g)
    out = scheduled_balance(g, init, reverse=reverse)
    assert is_proper(g, out)
    assert out.num_colors == init.num_colors


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_recoloring_proper_capacity(g):
    init = greedy_coloring(g)
    out = balanced_recoloring(g, init)
    assert is_proper(g, out)
    if init.num_colors:
        gamma = g.num_vertices / init.num_colors
        assert out.class_sizes().max() <= int(np.floor(gamma)) + 1


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_iterated_greedy_never_more_colors(g):
    init = greedy_coloring(g, ordering="random", seed=1)
    out = iterated_greedy(g, init)
    assert is_proper(g, out)
    assert out.num_colors <= init.num_colors


@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(2, 12))
def test_parallel_algorithms_proper_any_threads(g, p):
    init = greedy_coloring(g)
    for out in (
        parallel_greedy_ff(g, num_threads=p),
        parallel_shuffle_balance(g, init, num_threads=p),
        parallel_scheduled_balance(g, init, num_threads=p),
        parallel_recoloring(g, init, num_threads=p),
    ):
        assert is_proper(g, out)


@settings(max_examples=25, deadline=None)
@given(graphs())
def test_parallel_p1_equals_sequential(g):
    init = greedy_coloring(g)
    assert np.array_equal(
        parallel_greedy_ff(g, num_threads=1).colors, init.colors)
    assert np.array_equal(
        parallel_shuffle_balance(g, init, num_threads=1).colors,
        shuffle_balance(g, init).colors)
    assert np.array_equal(
        parallel_scheduled_balance(g, init, num_threads=1).colors,
        scheduled_balance(g, init).colors)
    assert np.array_equal(
        parallel_recoloring(g, init, num_threads=1).colors,
        balanced_recoloring(g, init).colors)


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_aggregate_conserves_total_weight(g, seed):
    wg = WeightedGraph.from_csr(g)
    rng = np.random.default_rng(seed)
    comm = rng.integers(0, max(1, g.num_vertices // 2), size=g.num_vertices)
    agg, relabel = aggregate(wg, comm)
    assert agg.total_weight == pytest.approx(wg.total_weight)
    assert relabel.shape[0] == g.num_vertices


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_modularity_bounds_and_aggregation_invariance(g, seed):
    rng = np.random.default_rng(seed)
    comm = rng.integers(0, max(1, g.num_vertices // 3), size=g.num_vertices)
    q = modularity(g, comm)
    assert -0.5 - 1e-9 <= q <= 1.0
    if g.num_edges:
        wg = WeightedGraph.from_csr(g)
        agg, relabel = aggregate(wg, comm)
        assert modularity(agg, np.arange(agg.num_vertices)) == pytest.approx(q)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_edge_arrays_roundtrip(g):
    u, v = g.edge_arrays()
    rebuilt = from_edge_arrays(u, v, num_vertices=g.num_vertices)
    assert rebuilt == g


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_smallest_last_is_permutation(g):
    from repro.graph import smallest_last_order

    order = smallest_last_order(g)
    assert sorted(order.tolist()) == list(range(g.num_vertices))
