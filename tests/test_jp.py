"""Tests for Jones-Plassmann coloring and the GJP balanced baseline."""

import numpy as np
import pytest

from repro.coloring import assert_proper, balance_report, greedy_coloring, jones_plassmann


class TestJonesPlassmann:
    @pytest.mark.parametrize("weighting", ["random", "largest_first", "smallest_last"])
    @pytest.mark.parametrize("choice", ["ff", "lu"])
    def test_proper_and_bounded(self, small_cnr, weighting, choice):
        c = jones_plassmann(small_cnr, weighting=weighting, choice=choice, seed=0)
        assert_proper(small_cnr, c)
        assert c.num_colors <= small_cnr.max_degree + 1

    def test_deterministic_by_seed(self, small_cnr):
        a = jones_plassmann(small_cnr, seed=4)
        b = jones_plassmann(small_cnr, seed=4)
        assert np.array_equal(a.colors, b.colors)

    def test_thread_count_invariant(self, small_cnr):
        # unlike the speculative schemes, JP is fixed by its weights
        a = jones_plassmann(small_cnr, seed=0, num_threads=1)
        b = jones_plassmann(small_cnr, seed=0, num_threads=16)
        assert np.array_equal(a.colors, b.colors)

    def test_rounds_recorded(self, small_cnr):
        c = jones_plassmann(small_cnr, seed=0)
        assert c.meta["rounds"] >= 1
        assert c.meta["trace"].num_supersteps == c.meta["rounds"]

    def test_rounds_scale_with_structure(self, path10, k5):
        # a clique needs |V| rounds (one local max at a time among mutually
        # adjacent vertices); a path needs only a few
        assert jones_plassmann(k5, seed=0).meta["rounds"] == 5
        assert jones_plassmann(path10, seed=0).meta["rounds"] <= 6

    def test_lu_balances_better_than_ff(self, small_cnr):
        ff = balance_report(jones_plassmann(small_cnr, choice="ff", seed=0))
        lu = balance_report(jones_plassmann(small_cnr, choice="lu", seed=0))
        assert lu.rsd_percent < ff.rsd_percent

    def test_gjp_baseline_weaker_than_vff(self, small_cnr):
        """The paper's point: prior balanced heuristics leave residual skew
        that the guided schemes eliminate."""
        from repro.coloring import shuffle_balance

        gjp = balance_report(jones_plassmann(small_cnr, choice="lu", seed=0))
        init = greedy_coloring(small_cnr)
        vff = balance_report(shuffle_balance(small_cnr, init))
        assert vff.rsd_percent < gjp.rsd_percent

    def test_empty_graph(self):
        from repro.graph import empty_graph

        c = jones_plassmann(empty_graph(0), seed=0)
        assert c.num_colors == 0

    def test_bad_args(self, path10):
        with pytest.raises(ValueError, match="weighting"):
            jones_plassmann(path10, weighting="zz")
        with pytest.raises(ValueError, match="choice"):
            jones_plassmann(path10, choice="zz")
