"""Tests for graph file I/O."""

import gzip

import pytest

from repro.graph.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_roundtrip(self, petersen, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(petersen, path)
        back = read_matrix_market(path)
        assert back == petersen

    def test_general_coordinate_accepted(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 3 4\n"
            "1 2 1.5\n"
            "2 1 1.5\n"
            "2 3 2.0\n"
            "3 3 9.0\n"
        )
        g = read_matrix_market(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2  # self-loop (3,3) dropped, (1,2) deduped

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "g.mtx.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n")
        g = read_matrix_market(path)
        assert g.num_edges == 1

    def test_not_matrix_market_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello\n")
        with pytest.raises(ValueError, match="not a MatrixMarket"):
            read_matrix_market(path)

    def test_array_format_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)

    def test_rectangular_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)

    def test_blank_line_before_size_line(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% comment block\n"
            "\n"
            "3 3 2\n"
            "2 1\n"
            "3 1\n"
        )
        g = read_matrix_market(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_blanks_and_comments_in_entry_body(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "\n"
            "2 1\n"
            "% interior comment\n"
            "\n"
            "3 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 2

    def test_blank_lines_gzipped(self, tmp_path):
        path = tmp_path / "g.mtx.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(
                "%%MatrixMarket matrix coordinate pattern symmetric\n"
                "\n"
                "2 2 1\n"
                "\n"
                "2 1\n"
            )
        g = read_matrix_market(path)
        assert g.num_edges == 1

    def test_truncated_file_names_line(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "2 1\n"
        )
        with pytest.raises(ValueError, match=r"truncated.*expected 3 entries.*line 3"):
            read_matrix_market(path)

    def test_truncated_gzipped(self, tmp_path):
        path = tmp_path / "trunc.mtx.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(
                "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n"
            )
        with pytest.raises(ValueError, match="truncated"):
            read_matrix_market(path)

    def test_malformed_entry_names_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "oops\n"
        )
        with pytest.raises(ValueError, match=r"bad\.mtx:4.*'oops'"):
            read_matrix_market(path)

    def test_malformed_size_line_names_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\nnot a size\n"
        )
        with pytest.raises(ValueError, match=r"bad\.mtx:2.*size line"):
            read_matrix_market(path)

    def test_missing_size_line(self, tmp_path):
        path = tmp_path / "empty.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n\n")
        with pytest.raises(ValueError, match="missing size line"):
            read_matrix_market(path)

    def test_out_of_range_entry_names_line(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n"
        )
        with pytest.raises(ValueError, match=r"bad\.mtx:3.*outside"):
            read_matrix_market(path)


class TestEdgeList:
    def test_roundtrip(self, random_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(random_graph, path)
        back = read_edge_list(path, num_vertices=random_graph.num_vertices)
        assert back == random_graph

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n% another\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 3.5\n1 2 0.1\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_single_token_line_names_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n7\n")
        with pytest.raises(ValueError, match=r"g\.txt:2.*'7'"):
            read_edge_list(path)

    def test_non_integer_token_quotes_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 x\n")
        with pytest.raises(ValueError, match=r"g\.txt:2.*non-integer.*'1 x'"):
            read_edge_list(path)

    def test_gzipped_malformed_line_names_line(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("# comment\n0 1\nbogus line\n")
        with pytest.raises(ValueError, match=r"g\.txt\.gz:3"):
            read_edge_list(path)
