"""Shared fixtures: small graphs with known structure."""

from __future__ import annotations

import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    from_edge_list,
    load_dataset,
    path_graph,
    star_graph,
)


@pytest.fixture
def path10():
    return path_graph(10)


@pytest.fixture
def cycle5():
    return cycle_graph(5)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def star8():
    return star_graph(8)


@pytest.fixture
def petersen():
    """The Petersen graph: 3-regular, chromatic number 3, girth 5."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return from_edge_list(outer + inner + spokes)


@pytest.fixture
def random_graph():
    return erdos_renyi_graph(200, 0.05, seed=42)


@pytest.fixture
def two_cliques():
    """Two K5s joined by a single bridge — the classic community test."""
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(5 + i, 5 + j) for i in range(5) for j in range(i + 1, 5)]
    edges.append((0, 5))
    return from_edge_list(edges)


@pytest.fixture(scope="session")
def small_cnr():
    """A small instance of the cnr stand-in shared across test modules."""
    return load_dataset("cnr", scale=0.06, seed=1)
