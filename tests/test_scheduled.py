"""Tests for scheduled-move balancing (Sched-Rev / Sched-Fwd)."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper,
    balance_report,
    gamma,
    greedy_coloring,
    plan_moves,
    scheduled_balance,
)


class TestPlanning:
    def test_plan_respects_capacity(self, small_cnr):
        init = greedy_coloring(small_cnr)
        plan = plan_moves(init)
        sizes = init.class_sizes().astype(float)
        incoming = np.bincount(plan.targets, minlength=init.num_colors)
        g = plan.gamma
        for k in range(init.num_colors):
            if incoming[k]:
                assert sizes[k] + incoming[k] <= g

    def test_plan_sources_are_overfull(self, small_cnr):
        init = greedy_coloring(small_cnr)
        plan = plan_moves(init)
        sizes = init.class_sizes()
        g = plan.gamma
        for v in plan.vertices:
            assert sizes[init.colors[v]] > g

    def test_reverse_targets_high_bins_first(self, small_cnr):
        init = greedy_coloring(small_cnr)
        rev = plan_moves(init, reverse=True)
        fwd = plan_moves(init, reverse=False)
        if len(rev) and len(fwd):
            assert rev.targets[0] >= fwd.targets[0]

    def test_empty_coloring_plan(self):
        from repro.coloring import Coloring

        plan = plan_moves(Coloring(np.empty(0, dtype=np.int64), 0))
        assert len(plan) == 0

    def test_balanced_input_empty_plan(self):
        from repro.coloring import Coloring

        plan = plan_moves(Coloring(np.array([0, 0, 1, 1]), 2))
        assert len(plan) == 0


class TestScheduledBalance:
    def test_proper_same_colors(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = scheduled_balance(small_cnr, init)
        assert_proper(small_cnr, out)
        assert out.num_colors == init.num_colors

    def test_improves_balance(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = scheduled_balance(small_cnr, init)
        assert balance_report(out).rsd_percent < balance_report(init).rsd_percent

    def test_forward_variant_proper(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = scheduled_balance(small_cnr, init, reverse=False)
        assert_proper(small_cnr, out)
        assert out.strategy == "sched-fwd"

    def test_multiple_rounds_no_worse(self, small_cnr):
        init = greedy_coloring(small_cnr)
        one = scheduled_balance(small_cnr, init, rounds=1)
        three = scheduled_balance(small_cnr, init, rounds=3)
        assert_proper(small_cnr, three)
        assert balance_report(three).rsd_percent <= balance_report(one).rsd_percent + 1e-9

    def test_commit_counts(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = scheduled_balance(small_cnr, init)
        moved = int(np.count_nonzero(out.colors != init.colors))
        assert out.meta["committed"] == moved
        assert out.meta["committed"] <= out.meta["attempted"]

    def test_targets_capacity_respected(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = scheduled_balance(small_cnr, init)
        g = gamma(small_cnr.num_vertices, init.num_colors)
        init_sizes = init.class_sizes()
        out_sizes = out.class_sizes()
        for b in range(init.num_colors):
            if out_sizes[b] > init_sizes[b]:  # received movers
                assert out_sizes[b] <= g

    def test_rounds_validation(self, small_cnr):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match="rounds"):
            scheduled_balance(small_cnr, init, rounds=0)

    def test_graph_mismatch(self, small_cnr, path10):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match="match"):
            scheduled_balance(path10, init)
