"""Tests for the observability layer: recorder, exporter, bridge, parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring import (
    balanced_recoloring,
    greedy_coloring,
    iterated_greedy,
    shuffle_balance,
)
from repro.graph import erdos_renyi_graph
from repro.obs import (
    NULL,
    Recorder,
    as_recorder,
    install,
    installed,
    read_jsonl,
    record_trace,
    recording,
    write_jsonl,
)
from repro.parallel import (
    parallel_greedy_ff,
    parallel_recoloring,
    parallel_scheduled_balance,
    parallel_shuffle_balance,
)
from repro.parallel.engine import SuperstepRecord, TickMachine


class TestRecorder:
    def test_events_are_ordered_and_stamped(self):
        rec = Recorder()
        rec.event("a", x=1)
        rec.event("b", y=2)
        assert [e["kind"] for e in rec.events] == ["a", "b"]
        assert [e["seq"] for e in rec.events] == [1, 2]
        assert all(e["t"] >= 0 for e in rec.events)
        assert rec.events[0]["x"] == 1

    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("moves")
        rec.count("moves", 4)
        assert rec.counters["moves"] == 5

    def test_gauges_last_write_wins(self):
        rec = Recorder()
        rec.gauge("rsd", 10.0)
        rec.gauge("rsd", 3.0)
        assert rec.gauges["rsd"] == 3.0

    def test_counts_and_events_are_thread_safe(self):
        # the serve layer's worker pool counts into one shared recorder;
        # no increment may be lost and event seq numbers must stay unique
        import threading

        rec = Recorder()

        def work(tid):
            for _ in range(500):
                rec.count("jobs")
                rec.event("tick", tid=tid)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counters["jobs"] == 4000
        assert len(rec.events) == 4000
        assert len({e["seq"] for e in rec.events}) == 4000

    def test_phase_nesting_paths(self):
        rec = Recorder()
        with rec.phase("outer"):
            with rec.phase("inner"):
                rec.event("work")
        assert rec.events_of("work")[0]["phase"] == "outer/inner"
        starts = [e["name"] for e in rec.events_of("phase_start")]
        assert starts == ["outer", "outer/inner"]
        ends = [e["name"] for e in rec.events_of("phase_end")]
        assert ends == ["outer/inner", "outer"]
        assert set(rec.phase_seconds) == {"outer", "outer/inner"}
        assert rec.phase_seconds["outer"] >= rec.phase_seconds["outer/inner"]

    def test_phase_restores_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.phase("boom"):
                raise RuntimeError()
        rec.event("after")
        assert "phase" not in rec.events_of("after")[0]
        assert "boom" in rec.phase_seconds

    def test_summary_mentions_everything(self):
        rec = Recorder()
        with rec.phase("p"):
            rec.count("c", 2)
            rec.gauge("g", 1.5)
        text = rec.summary()
        assert "p" in text and "c" in text and "g" in text

    def test_null_recorder_is_inert(self):
        NULL.event("x", a=1)
        NULL.count("c")
        NULL.gauge("g", 1)
        with NULL.phase("p"):
            pass
        assert not NULL.enabled

    def test_as_recorder_resolution(self):
        rec = Recorder()
        assert as_recorder(rec) is rec
        assert as_recorder(None) is NULL
        with recording() as installed_rec:
            assert as_recorder(None) is installed_rec
            assert installed() is installed_rec
            # explicit argument still wins over the installed recorder
            assert as_recorder(rec) is rec
        assert as_recorder(None) is NULL
        assert installed() is None

    def test_recording_restores_previous(self):
        outer = Recorder()
        install(outer)
        try:
            with recording(Recorder()):
                assert installed() is not outer
            assert installed() is outer
        finally:
            install(None)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        rec = Recorder()
        with rec.phase("p"):
            rec.event("data", arr=np.arange(3), scalar=np.int64(7),
                      f=np.float64(1.5), flag=np.bool_(True))
        rec.count("c", np.int64(2))
        path = tmp_path / "events.jsonl"
        n = write_jsonl(rec, path)
        back = read_jsonl(path)
        assert len(back) == n == len(rec.events) + 1  # + run_summary
        data = [e for e in back if e["kind"] == "data"][0]
        assert data["arr"] == [0, 1, 2]
        assert data["scalar"] == 7 and data["f"] == 1.5 and data["flag"] is True
        assert back[-1]["kind"] == "run_summary"
        assert back[-1]["counters"] == {"c": 2}

    def test_gzip_round_trip(self, tmp_path):
        events = [{"kind": "a", "seq": 1}, {"kind": "b", "seq": 2}]
        path = tmp_path / "events.jsonl.gz"
        assert write_jsonl(events, path) == 2
        assert read_jsonl(path) == events

    def test_malformed_line_names_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_jsonl(path)


class TestBridge:
    def _trace(self):
        machine = TickMachine(2, algorithm="demo")
        record = SuperstepRecord(work_per_thread=np.array([3.0, 1.0]))
        record.conflicts = 4
        record.atomic_ops = 2
        record.items = 5
        machine.trace.add(record)
        return machine.trace

    def test_record_trace_events(self):
        rec = Recorder()
        trace = self._trace()
        record_trace(rec, trace)
        steps = rec.events_of("superstep")
        assert len(steps) == trace.num_supersteps == 1
        assert steps[0]["conflicts"] == 4
        assert steps[0]["total_work"] == 4.0
        summary = rec.events_of("trace_summary")[0]
        assert summary["algorithm"] == "demo"
        assert rec.counters["demo.conflicts"] == 4

    def test_record_to_method(self):
        rec = Recorder()
        self._trace().record_to(rec)
        assert len(rec.events_of("superstep")) == 1

    def test_disabled_recorder_skips(self):
        record_trace(NULL, self._trace())  # must not raise


@pytest.fixture(scope="module")
def obs_graph():
    return erdos_renyi_graph(400, 0.03, seed=7)


class TestParity:
    """Attaching a recorder never changes any coloring."""

    def _assert_parity(self, run):
        bare = run(None)
        rec = Recorder()
        traced = run(rec)
        assert np.array_equal(bare.colors, traced.colors)
        assert bare.num_colors == traced.num_colors
        assert rec.events, "recorder attached but no events emitted"
        return rec

    @pytest.mark.parametrize("choice", ["ff", "lu", "random"])
    def test_greedy(self, obs_graph, choice):
        rec = self._assert_parity(
            lambda r: greedy_coloring(obs_graph, choice=choice, seed=3, recorder=r)
        )
        assert rec.events_of("coloring")

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    @pytest.mark.parametrize("traversal", ["vertex", "color"])
    def test_shuffle_balance(self, obs_graph, backend, traversal):
        init = greedy_coloring(obs_graph)
        rec = self._assert_parity(
            lambda r: shuffle_balance(obs_graph, init, traversal=traversal,
                                      backend=backend, recorder=r)
        )
        rounds = rec.events_of("drain_round")
        assert rounds
        assert all("rsd_percent" in e and "moves" in e for e in rounds)
        assert rec.events_of("balance")

    def test_iterated_greedy(self, obs_graph):
        init = greedy_coloring(obs_graph)
        rec = self._assert_parity(
            lambda r: iterated_greedy(obs_graph, init, iterations=3, recorder=r)
        )
        assert len(rec.events_of("iteration")) == 3

    def test_balanced_recoloring(self, obs_graph):
        init = greedy_coloring(obs_graph)
        self._assert_parity(
            lambda r: balanced_recoloring(obs_graph, init, recorder=r)
        )

    def test_parallel_greedy_ff(self, obs_graph):
        rec = self._assert_parity(
            lambda r: parallel_greedy_ff(obs_graph, num_threads=4, recorder=r)
        )
        steps = rec.events_of("superstep")
        bare = parallel_greedy_ff(obs_graph, num_threads=4)
        assert len(steps) == bare.meta["trace"].num_supersteps

    @pytest.mark.parametrize("traversal", ["vertex", "color"])
    def test_parallel_shuffle(self, obs_graph, traversal):
        init = greedy_coloring(obs_graph)
        rec = self._assert_parity(
            lambda r: parallel_shuffle_balance(
                obs_graph, init, traversal=traversal, num_threads=4, recorder=r)
        )
        assert rec.events_of("superstep")
        assert rec.events_of("balance")

    def test_parallel_scheduled(self, obs_graph):
        init = greedy_coloring(obs_graph)
        rec = self._assert_parity(
            lambda r: parallel_scheduled_balance(
                obs_graph, init, num_threads=4, rounds=2, recorder=r)
        )
        assert rec.events_of("plan_round")

    def test_parallel_recoloring(self, obs_graph):
        init = greedy_coloring(obs_graph)
        rec = self._assert_parity(
            lambda r: parallel_recoloring(obs_graph, init, num_threads=4, recorder=r)
        )
        assert rec.events_of("superstep")

    def test_installed_recorder_also_preserves_results(self, obs_graph):
        bare = greedy_coloring(obs_graph)
        with recording() as rec:
            traced = greedy_coloring(obs_graph)
        assert np.array_equal(bare.colors, traced.colors)
        assert rec.events_of("coloring")


class TestTracedRun:
    def test_archives_jsonl(self, obs_graph, tmp_path):
        from repro.experiments import traced_run

        path = tmp_path / "run.jsonl"
        with traced_run(path) as rec:
            greedy_coloring(obs_graph)
        assert rec.events
        events = read_jsonl(path)
        assert events[-1]["kind"] == "run_summary"
        assert any(e["kind"] == "coloring" for e in events)

    def test_no_path_no_file(self, obs_graph, tmp_path):
        from repro.experiments import traced_run

        with traced_run() as rec:
            greedy_coloring(obs_graph)
        assert rec.events
        assert list(tmp_path.iterdir()) == []
