"""Property-based tests for the extension modules (JP, D2, Kempe, solver)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    greedy_coloring,
    greedy_distance2,
    is_distance2_proper,
    is_proper,
    jones_plassmann,
    kempe_balance,
)
from repro.coloring.balance import size_spread
from repro.graph import from_edge_arrays

MAX_N = 30


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=MAX_N))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    u = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    v = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edge_arrays(np.asarray(u, dtype=np.int64),
                            np.asarray(v, dtype=np.int64), num_vertices=n)


@settings(max_examples=40, deadline=None)
@given(graphs(), st.sampled_from(["random", "largest_first", "smallest_last"]),
       st.sampled_from(["ff", "lu"]), st.integers(0, 2**31 - 1))
def test_jones_plassmann_proper_bounded(g, weighting, choice, seed):
    c = jones_plassmann(g, weighting=weighting, choice=choice, seed=seed)
    assert is_proper(g, c)
    assert c.num_colors <= g.max_degree + 1


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_jones_plassmann_thread_invariant(g, seed):
    a = jones_plassmann(g, seed=seed, num_threads=1)
    b = jones_plassmann(g, seed=seed, num_threads=7)
    assert np.array_equal(a.colors, b.colors)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.sampled_from(["ff", "lu"]))
def test_distance2_proper(g, choice):
    c = greedy_distance2(g, choice=choice)
    assert is_distance2_proper(g, c)
    # a D2 coloring is in particular a proper D1 coloring
    assert is_proper(g, c)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_kempe_proper_same_colors_never_worse(g):
    init = greedy_coloring(g)
    out = kempe_balance(g, init)
    assert is_proper(g, out)
    assert out.num_colors == init.num_colors
    assert size_spread(out) <= size_spread(init)


@settings(max_examples=25, deadline=None)
@given(graphs(), st.integers(0, 2**31 - 1))
def test_solver_gs_matches_direct_solution(g, seed):
    from repro.solver import laplacian_system, multicolor_gauss_seidel

    system = laplacian_system(g, seed=seed)
    coloring = greedy_coloring(g)
    res = multicolor_gauss_seidel(system, coloring, tol=1e-10, max_sweeps=2000)
    if res.converged:
        expected = np.linalg.solve(np.asarray(system.matrix.todense()), system.rhs)
        assert np.allclose(res.x, expected, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(1, 6), st.integers(0, 2**31 - 1))
def test_partitions_cover_and_cut_bounded(g, k, seed):
    from repro.parallel.partition import bfs_partition, cut_edges, random_partition

    for parts in (random_partition(g, k, seed=seed), bfs_partition(g, k, seed=seed)):
        flat = np.sort(np.concatenate(parts))
        assert np.array_equal(flat, np.arange(g.num_vertices))
        assert 0 <= cut_edges(g, parts) <= g.num_edges
