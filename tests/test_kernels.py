"""Backend equivalence and dispatch tests for the kernel layer.

The ``vectorized`` backend must be *bit-identical* to ``reference`` for the
First-Fit sweep (any work list, any base snapshot) and must produce proper,
equally-sized, at-least-as-balanced colorings for every shuffle variant.
The dispatch machinery (argument > override > environment > default) is
tested separately from the kernels themselves.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.coloring import (
    balanced_recoloring,
    greedy_coloring,
    is_proper,
    iterated_greedy,
    shuffle_balance,
)
from repro.coloring.balance import gamma, relative_std_dev
from repro.graph import (
    complete_graph,
    empty_graph,
    erdos_renyi_graph,
    from_edge_arrays,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.kernels import reference, vectorized
from repro.parallel import parallel_greedy_ff
from repro.parallel.mp import mp_greedy_ff

MAX_N = 40


@st.composite
def graphs(draw):
    """A random simple graph with up to MAX_N vertices (isolated ones kept)."""
    n = draw(st.integers(min_value=2, max_value=MAX_N))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    u = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    v = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edge_arrays(np.asarray(u, dtype=np.int64),
                            np.asarray(v, dtype=np.int64), num_vertices=n)


def fixed_graphs():
    """Named deterministic graphs covering the documented edge cases."""
    return [
        ("empty", empty_graph(17)),
        ("isolated+edges", from_edge_arrays(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 2, 3], dtype=np.int64), num_vertices=9)),
        ("star", star_graph(33)),
        ("complete", complete_graph(12)),
        ("path", path_graph(64)),
        ("er", erdos_renyi_graph(300, 0.03, seed=5)),
        ("rmat", rmat_graph(9, 8, seed=7)),
    ]


@pytest.fixture(autouse=True)
def _reset_backend_override():
    yield
    kernels.set_default_backend(None)


# ----------------------------------------------------------------------
# First-Fit sweep: bit-identity
# ----------------------------------------------------------------------
class TestFFSweepEquivalence:
    @pytest.mark.parametrize(
        "g", [g for _, g in fixed_graphs()], ids=[n for n, _ in fixed_graphs()]
    )
    @pytest.mark.parametrize("ordering", ["natural", "random", "largest_first", "smallest_last"])
    def test_bit_identical_full_sweep(self, g, ordering):
        a = greedy_coloring(g, ordering=ordering, seed=3, backend="reference")
        b = greedy_coloring(g, ordering=ordering, seed=3, backend="vectorized")
        assert np.array_equal(a.colors, b.colors)
        assert a.num_colors == b.num_colors

    @settings(max_examples=60, deadline=None)
    @given(graphs(), st.sampled_from(["natural", "random", "largest_first"]))
    def test_bit_identical_property(self, g, ordering):
        a = greedy_coloring(g, ordering=ordering, seed=1, backend="reference")
        b = greedy_coloring(g, ordering=ordering, seed=1, backend="vectorized")
        assert np.array_equal(a.colors, b.colors)

    @settings(max_examples=60, deadline=None)
    @given(graphs(), st.integers(0, 2**31 - 1))
    def test_bit_identical_with_base_snapshot(self, g, seed):
        """Worker semantics: partial work list against a stale snapshot."""
        rng = np.random.default_rng(seed)
        n = g.num_vertices
        base = rng.integers(-1, 4, size=n).astype(np.int64)
        k = int(rng.integers(0, n + 1))
        work = rng.permutation(n)[:k].astype(np.int64)
        a = kernels.ff_sweep(g, work, base, backend="reference")
        b = kernels.ff_sweep(g, work, base, backend="vectorized")
        assert np.array_equal(a, b)
        untouched = np.setdiff1d(np.arange(n), work)
        assert np.array_equal(a[untouched], base[untouched])

    def test_empty_work_list_returns_base_copy(self, random_graph):
        base = np.full(random_graph.num_vertices, -1, dtype=np.int64)
        out = kernels.ff_sweep(random_graph, np.empty(0, dtype=np.int64), base,
                               backend="vectorized")
        assert np.array_equal(out, base)
        assert out is not base

    def test_lu_and_random_delegate_to_reference_loop(self, random_graph):
        """Non-FF choice rules are sequential under every backend."""
        for choice in ("lu", "random"):
            a = greedy_coloring(random_graph, choice=choice, seed=9,
                                backend="reference")
            b = greedy_coloring(random_graph, choice=choice, seed=9,
                                backend="vectorized")
            assert np.array_equal(a.colors, b.colors)


# ----------------------------------------------------------------------
# Shuffle drain: proper, same C, never less balanced
# ----------------------------------------------------------------------
class TestShuffleEquivalence:
    @pytest.mark.parametrize("choice", ["ff", "lu"])
    @pytest.mark.parametrize("traversal", ["vertex", "color"])
    @pytest.mark.parametrize("weight", ["unit", "degree"])
    def test_fixed_graph_regime(self, choice, traversal, weight):
        g = erdos_renyi_graph(600, 0.02, seed=11)
        init = greedy_coloring(g)
        ref = shuffle_balance(g, init, choice=choice, traversal=traversal,
                              weight=weight, backend="reference")
        vec = shuffle_balance(g, init, choice=choice, traversal=traversal,
                              weight=weight, backend="vectorized")
        for out in (ref, vec):
            assert is_proper(g, out)
            assert out.num_colors == init.num_colors
        rsd_ref = relative_std_dev(ref.class_sizes())
        rsd_vec = relative_std_dev(vec.class_sizes())
        rsd_init = relative_std_dev(init.class_sizes())
        # both backends must land in the same balance regime; only unit
        # weight provably improves the vertex-count RSD
        if weight == "unit":
            assert rsd_vec <= rsd_init
        assert rsd_vec <= rsd_ref + 5.0

    @settings(max_examples=50, deadline=None)
    @given(graphs(), st.sampled_from(["ff", "lu"]),
           st.sampled_from(["vertex", "color"]))
    def test_property_proper_and_no_new_overfull(self, g, choice, traversal):
        init = greedy_coloring(g)
        vec = shuffle_balance(g, init, choice=choice, traversal=traversal,
                              backend="vectorized")
        assert is_proper(g, vec)
        assert vec.num_colors == init.num_colors
        if init.num_colors:
            gam = gamma(g.num_vertices, init.num_colors)
            # drains never push an under-γ bin past ceil(γ): overfull total
            # weight can only shrink
            over_init = np.maximum(init.class_sizes() - gam, 0).sum()
            over_vec = np.maximum(vec.class_sizes() - gam, 0).sum()
            assert over_vec <= over_init + 1e-9

    def test_moves_metadata_counts_actual_moves(self):
        g = erdos_renyi_graph(400, 0.03, seed=13)
        init = greedy_coloring(g)
        vec = shuffle_balance(g, init, backend="vectorized")
        assert vec.meta["moves"] == int((vec.colors != init.colors).sum())
        assert vec.meta["backend"] == "vectorized"


# ----------------------------------------------------------------------
# Conflict/bin accounting kernels
# ----------------------------------------------------------------------
class TestConflictKernels:
    def test_monochromatic_edges_and_count(self, path10):
        colors = np.zeros(10, dtype=np.int64)  # every edge monochromatic
        u, v = kernels.monochromatic_edges(path10, colors)
        assert u.shape[0] == 9
        assert kernels.count_monochromatic_edges(path10, colors) == 9
        proper = np.arange(10, dtype=np.int64) % 2
        assert kernels.count_monochromatic_edges(path10, proper) == 0

    def test_uncolored_vertices_never_conflict(self, path10):
        colors = np.full(10, -1, dtype=np.int64)
        assert kernels.count_monochromatic_edges(path10, colors) == 0

    def test_detect_conflicts_returns_higher_id_losers_in_work(self, path10):
        colors = np.zeros(10, dtype=np.int64)
        work = np.array([0, 1, 2], dtype=np.int64)
        losers = kernels.detect_conflicts(path10, colors, work)
        assert np.array_equal(losers, [1, 2])  # 3..9 not in the work list

    def test_bin_sizes_ignores_uncolored(self):
        colors = np.array([0, 2, 2, -1, 1], dtype=np.int64)
        assert np.array_equal(kernels.bin_sizes(colors, 4), [1, 1, 2, 0])


# ----------------------------------------------------------------------
# Backend dispatch machinery
# ----------------------------------------------------------------------
class TestBackendDispatch:
    def test_available_backends(self):
        assert kernels.available_backends() == ("reference", "vectorized")

    def test_invalid_backend_rejected(self, random_graph):
        with pytest.raises(ValueError, match="backend"):
            greedy_coloring(random_graph, backend="numba")
        with pytest.raises(ValueError, match="backend"):
            kernels.resolve_backend("gpu")
        with pytest.raises(ValueError, match="backend"):
            kernels.set_default_backend("cuda")

    def test_default_and_explicit_resolution(self):
        assert kernels.resolve_backend(None) == "vectorized"
        assert kernels.resolve_backend(None, default="reference") == "reference"
        assert kernels.resolve_backend("reference") == "reference"

    def test_env_var_selects_backend(self, monkeypatch, random_graph):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert kernels.get_default_backend() == "reference"
        c = greedy_coloring(random_graph)
        assert c.meta["backend"] == "reference"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            kernels.get_default_backend()

    def test_override_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        kernels.set_default_backend("vectorized")
        assert kernels.resolve_backend(None, default="reference") == "vectorized"
        kernels.set_default_backend(None)
        assert kernels.resolve_backend(None) == "reference"

    def test_meta_records_backend(self, random_graph):
        assert greedy_coloring(random_graph).meta["backend"] == "vectorized"
        assert greedy_coloring(random_graph, choice="lu").meta["backend"] == "reference"
        init = greedy_coloring(random_graph)
        assert shuffle_balance(random_graph, init).meta["backend"] == "reference"
        assert shuffle_balance(random_graph, init, backend="vectorized").meta[
            "backend"] == "vectorized"


# ----------------------------------------------------------------------
# Backend threading through the higher layers
# ----------------------------------------------------------------------
class TestBackendThreading:
    def test_iterated_greedy_backends_identical(self, random_graph):
        init = greedy_coloring(random_graph)
        a = iterated_greedy(random_graph, init, iterations=2, backend="reference")
        b = iterated_greedy(random_graph, init, iterations=2, backend="vectorized")
        assert np.array_equal(a.colors, b.colors)
        assert b.meta["backend"] == "vectorized"

    def test_balanced_recoloring_accepts_backend(self, random_graph):
        init = greedy_coloring(random_graph)
        out = balanced_recoloring(random_graph, init, backend="vectorized")
        assert is_proper(random_graph, out)
        with pytest.raises(ValueError, match="backend"):
            balanced_recoloring(random_graph, init, backend="bogus")

    def test_mp_single_worker_backends_identical(self, random_graph):
        a = mp_greedy_ff(random_graph, num_workers=1, backend="reference")
        b = mp_greedy_ff(random_graph, num_workers=1, backend="vectorized")
        assert np.array_equal(a.colors, b.colors)
        assert b.meta["backend"] == "vectorized"

    def test_mp_two_workers_backends_identical(self):
        g = erdos_renyi_graph(300, 0.03, seed=21)
        a = mp_greedy_ff(g, num_workers=2, backend="reference")
        b = mp_greedy_ff(g, num_workers=2, backend="vectorized")
        assert np.array_equal(a.colors, b.colors)
        assert is_proper(g, b)

    def test_parallel_greedy_rejects_bad_ordering(self, random_graph):
        n = random_graph.num_vertices
        bad = np.zeros(n, dtype=np.int64)  # right length, not a permutation
        with pytest.raises(ValueError, match="permutation"):
            parallel_greedy_ff(random_graph, ordering=bad)

    def test_greedy_rejects_non_permutation_ordering(self, random_graph):
        n = random_graph.num_vertices
        dup = np.arange(n, dtype=np.int64)
        dup[0] = 1  # vertex 0 missing, vertex 1 twice
        with pytest.raises(ValueError, match="permutation"):
            greedy_coloring(random_graph, ordering=dup)


# ----------------------------------------------------------------------
# Larger randomized cross-check
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_large_graph_full_equivalence():
    g = rmat_graph(14, 8, seed=17)
    a = greedy_coloring(g, backend="reference")
    b = greedy_coloring(g, backend="vectorized")
    assert np.array_equal(a.colors, b.colors)
    for traversal in ("vertex", "color"):
        ref = shuffle_balance(g, a, traversal=traversal, backend="reference")
        vec = shuffle_balance(g, b, traversal=traversal, backend="vectorized")
        assert is_proper(g, vec)
        assert vec.num_colors == a.num_colors
        assert relative_std_dev(vec.class_sizes()) <= (
            relative_std_dev(ref.class_sizes()) + 2.0)
    direct = reference.ff_sweep(g, np.arange(g.num_vertices, dtype=np.int64),
                                np.full(g.num_vertices, -1, dtype=np.int64))
    batch = vectorized.ff_sweep(g, np.arange(g.num_vertices, dtype=np.int64),
                                np.full(g.num_vertices, -1, dtype=np.int64))
    assert np.array_equal(direct, batch)
