"""Tests for Kempe-chain rebalancing."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper,
    balance_report,
    greedy_coloring,
    kempe_balance,
    kempe_chains,
)
from repro.graph import cycle_graph, path_graph


class TestKempeChains:
    def test_path_chain_structure(self, path10):
        colors = np.arange(10) % 2  # alternating: one chain spanning all
        members, labels = kempe_chains(path10, colors, 0, 1)
        assert members.shape[0] == 10
        assert np.unique(labels).shape[0] == 1

    def test_disjoint_pairs_are_separate_chains(self):
        g = path_graph(4)
        colors = np.array([0, 1, 2, 0])
        members, labels = kempe_chains(g, colors, 0, 1)
        # vertices 0,1 form a chain; vertex 3 is its own chain
        assert members.tolist() == [0, 1, 3]
        assert labels[0] == labels[1] != labels[2]

    def test_empty_pair(self, path10):
        colors = np.zeros(10, dtype=np.int64)
        members, labels = kempe_chains(path10, colors, 5, 6)
        assert members.shape[0] == 0


class TestKempeBalance:
    def test_proper_and_same_colors(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = kempe_balance(small_cnr, init)
        assert_proper(small_cnr, out)
        assert out.num_colors == init.num_colors

    def test_improves_balance_strongly(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = kempe_balance(small_cnr, init)
        assert balance_report(out).rsd_percent < 0.3 * balance_report(init).rsd_percent

    def test_already_balanced_noop(self):
        g = path_graph(6)
        init = greedy_coloring(g)  # 3/3
        out = kempe_balance(g, init)
        assert np.array_equal(out.colors, init.colors)
        assert out.meta["swaps"] == 0

    def test_swap_preserves_total(self, small_cnr):
        init = greedy_coloring(small_cnr)
        out = kempe_balance(small_cnr, init)
        assert out.class_sizes().sum() == small_cnr.num_vertices

    def test_odd_cycle(self):
        g = cycle_graph(9)
        init = greedy_coloring(g)  # sizes [4, 4, 1]
        out = kempe_balance(g, init)
        assert_proper(g, out)
        sizes = np.sort(out.class_sizes())
        init_sizes = np.sort(init.class_sizes())
        assert sizes[-1] - sizes[0] <= init_sizes[-1] - init_sizes[0]

    def test_single_color(self):
        from repro.graph import empty_graph
        from repro.coloring import Coloring

        g = empty_graph(4)
        init = Coloring(np.zeros(4, dtype=np.int64), 1)
        out = kempe_balance(g, init)
        assert out.num_colors == 1

    def test_registry_dispatch(self, small_cnr):
        from repro.coloring import color_and_balance

        out = color_and_balance(small_cnr, "kempe")
        assert_proper(small_cnr, out)
        assert out.strategy == "kempe"

    def test_max_passes_validation(self, small_cnr):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError):
            kempe_balance(small_cnr, init, max_passes=0)

    def test_graph_mismatch(self, small_cnr, path10):
        init = greedy_coloring(small_cnr)
        with pytest.raises(ValueError, match="match"):
            kempe_balance(path10, init)
