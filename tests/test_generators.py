"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    clique_overlay_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_graph,
    grid_3d_graph,
    path_graph,
    powerlaw_cluster_graph,
    rmat_graph,
    road_network_graph,
    star_graph,
)


class TestTextbook:
    def test_empty(self):
        g = empty_graph(5)
        assert g.num_vertices == 5 and g.num_edges == 0

    def test_empty_negative_rejected(self):
        with pytest.raises(ValueError):
            empty_graph(-1)

    def test_path_edges(self):
        g = path_graph(6)
        assert g.num_edges == 5
        assert g.has_edge(0, 1) and g.has_edge(4, 5)

    def test_path_degenerate(self):
        assert path_graph(1).num_edges == 0
        assert path_graph(0).num_vertices == 0

    def test_cycle_regular(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degrees == 2)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.num_edges == 5
        assert g.degree(0) == 5

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degrees == 5)

    def test_complete_trivial(self):
        assert complete_graph(0).num_vertices == 0
        assert complete_graph(1).num_edges == 0


class TestErdosRenyi:
    def test_density_close_to_p(self):
        n, p = 400, 0.05
        g = erdos_renyi_graph(n, p, seed=0)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < g.num_edges < 1.2 * expected

    def test_p_zero(self):
        assert erdos_renyi_graph(50, 0.0, seed=0).num_edges == 0

    def test_p_one_dense_path(self):
        g = erdos_renyi_graph(20, 1.0, seed=0)
        assert g.num_edges == 190

    def test_dense_regime(self):
        g = erdos_renyi_graph(50, 0.5, seed=0)
        assert 400 < g.num_edges < 850

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_deterministic(self):
        a = erdos_renyi_graph(100, 0.1, seed=3)
        b = erdos_renyi_graph(100, 0.1, seed=3)
        assert a == b


class TestRmat:
    def test_size(self):
        g = rmat_graph(10, 8.0, seed=0)
        assert g.num_vertices == 1024
        # duplicates are collapsed, so below the target but same order
        assert 0.5 * 8 * 1024 < g.num_edges <= 8 * 1024

    def test_skewed_degrees(self):
        g = rmat_graph(11, 8.0, seed=0)
        deg = np.sort(g.degrees)[::-1]
        assert deg[0] > 8 * deg[len(deg) // 2 or 1]  # heavy tail

    def test_deterministic(self):
        assert rmat_graph(8, 4.0, seed=1) == rmat_graph(8, 4.0, seed=1)

    def test_bad_probs_rejected(self):
        with pytest.raises(ValueError):
            rmat_graph(6, 4.0, a=0.9, b=0.2, c=0.2)


class TestGrid3d:
    @pytest.mark.parametrize("stencil,expected_max", [(6, 6), (18, 18), (26, 26)])
    def test_interior_degree(self, stencil, expected_max):
        g = grid_3d_graph(5, 5, 5, stencil=stencil)
        assert g.max_degree == expected_max

    def test_vertex_count(self):
        assert grid_3d_graph(3, 4, 5).num_vertices == 60

    def test_six_stencil_edge_count(self):
        # 3 directions of (nx-1)*ny*nz style products
        g = grid_3d_graph(3, 3, 3, stencil=6)
        assert g.num_edges == 3 * (2 * 3 * 3)

    def test_bad_stencil(self):
        with pytest.raises(ValueError):
            grid_3d_graph(3, 3, 3, stencil=7)


class TestRoadNetwork:
    def test_avg_degree_near_two(self):
        g = road_network_graph(5000, seed=0)
        avg = 2 * g.num_edges / g.num_vertices
        assert 2.0 <= avg < 2.6

    def test_connected_tree_backbone(self):
        from repro.graph.properties import connected_components

        g = road_network_graph(500, seed=1)
        assert len(np.unique(connected_components(g))) == 1

    def test_single_vertex(self):
        assert road_network_graph(1).num_edges == 0

    def test_small_max_degree(self):
        g = road_network_graph(3000, seed=2)
        assert g.max_degree < 30


class TestCliqueOverlay:
    def test_contains_large_color_forcing_clique(self):
        g = clique_overlay_graph(500, 40, min_size=10, max_size=20, seed=0)
        # a clique of size >= min_size forces at least that many colors
        from repro.coloring import greedy_coloring

        assert greedy_coloring(g).num_colors >= 10

    def test_base_edges_included(self):
        base = path_graph(100)
        g = clique_overlay_graph(100, 5, min_size=3, max_size=5, base=base, seed=0)
        for u, v in base.edges():
            assert g.has_edge(u, v)

    def test_base_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            clique_overlay_graph(50, 3, base=path_graph(10))

    def test_max_size_exceeds_n_rejected(self):
        with pytest.raises(ValueError):
            clique_overlay_graph(5, 2, min_size=3, max_size=10)

    def test_sizes_within_bounds(self):
        # indirectly: edges bounded by num_cliques * C(max_size, 2)
        g = clique_overlay_graph(300, 10, min_size=3, max_size=6, seed=0)
        assert g.num_edges <= 10 * 15


class TestPowerlawCluster:
    def test_size_and_degrees(self):
        g = powerlaw_cluster_graph(300, 3, seed=0)
        assert g.num_vertices == 300
        assert g.num_edges >= 3 * (300 - 3) * 0.9

    def test_attach_bounds(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(5, 5)
