"""Tests for the experiment harness and drivers (tiny scales)."""

import pytest

from repro.experiments import (
    Table,
    ablation_conflicts_vs_threads,
    ablation_iterated_greedy,
    ablation_orderings,
    ablation_sched_fill_order,
    fig1a_ff_skew,
    fig1b_modularity,
    fig2_distributions,
    fig3ab_speedups,
    fig3c_uk2002,
    format_table,
    table2_inputs,
    table3_balance,
    table4_tilera,
    table5_x86,
    table6_schemes,
    table7_community,
)

TINY = dict(scale=0.04, seed=0)


class TestHarness:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [100, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_add_and_render(self):
        t = Table("t", ["x", "y"])
        t.add(1, 2)
        t.note("hello")
        out = t.render()
        assert "== t ==" in out and "hello" in out

    def test_table_wrong_arity(self):
        t = Table("t", ["x", "y"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_table_column(self):
        t = Table("t", ["x", "y"])
        t.add(1, 2)
        t.add(3, 4)
        assert t.column("y") == [2, 4]
        with pytest.raises(KeyError):
            t.column("z")

    def test_table_csv(self, tmp_path):
        t = Table("t", ["x"])
        t.add(1)
        path = tmp_path / "t.csv"
        t.to_csv(path)
        assert path.read_text().splitlines() == ["x", "1"]


class TestTableDrivers:
    def test_table2(self):
        t = table2_inputs(**TINY)
        assert len(t.rows) == 6
        assert all(r[1] > 0 for r in t.rows)

    def test_table3(self):
        t = table3_balance(inputs=("channel",), num_threads=4, **TINY)
        assert len(t.rows) == 1
        assert "%" in t.rows[0][1]

    def test_table4(self):
        t = table4_tilera(inputs=("channel",), **TINY)
        assert len(t.rows) == 1
        assert len(t.rows[0]) == 8  # input + 7 thread counts

    def test_table5(self):
        t = table5_x86(inputs=("channel",), **TINY)
        assert len(t.rows[0]) == 6

    def test_table6(self):
        t = table6_schemes(inputs=("channel",), num_threads=8, **TINY)
        row = t.rows[0]
        assert row[2] <= row[1]  # sched-rev not slower than vff

    def test_table7(self):
        t = table7_community(inputs=("channel",), num_threads=8,
                             max_iterations=5, **TINY)
        assert len(t.rows) == 1
        q_skew, q_bal = t.rows[0][3], t.rows[0][6]
        assert 0 <= q_skew <= 1 and 0 <= q_bal <= 1


class TestFigureDrivers:
    def test_fig1a(self):
        t = fig1a_ff_skew(**TINY)
        assert t.rows[0][1] >= t.rows[-1][1]  # decreasing sizes overall

    def test_fig1b(self):
        t = fig1b_modularity(num_threads=8, max_iterations=4, **TINY)
        assert t.headers == ["iteration", "serial", "wo_coloring",
                             "w_coloring_skewed", "w_coloring_balanced"]
        assert len(t.rows) >= 2

    def test_fig2(self):
        t = fig2_distributions(input_name="channel", **TINY)
        assert "vff" in t.headers and "greedy-random" in t.headers

    def test_fig3ab(self):
        til, x86 = fig3ab_speedups(inputs=("channel",), **TINY)
        assert til.rows[0][1] == pytest.approx(1.0)  # baseline speedup
        assert x86.rows[0][1] == pytest.approx(1.0)

    def test_fig3c(self):
        t = fig3c_uk2002(num_threads=8, max_iterations=4, **TINY)
        assert len(t.rows) >= 2


class TestAblationDrivers:
    def test_sched_fill_order(self):
        t = ablation_sched_fill_order(inputs=("cnr",), num_threads=4, **TINY)
        assert t.rows[0][2] >= 0 and t.rows[0][4] >= 0

    def test_orderings(self):
        t = ablation_orderings(inputs=("cnr",), **TINY)
        assert len(t.rows) == 2  # cnr + the ER control

    def test_iterated_greedy_never_increases(self):
        t = ablation_iterated_greedy(inputs=("cnr",), iterations=3, **TINY)
        for row in t.rows:
            counts = row[1:]
            assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_conflicts_vs_threads(self):
        t = ablation_conflicts_vs_threads(thread_counts=(1, 4, 16), **TINY)
        assert t.column("conflicts")[0] == 0  # single thread never conflicts


class TestKempeAblation:
    def test_kempe_improves(self):
        from repro.experiments import ablation_kempe

        t = ablation_kempe(inputs=("channel",), **TINY)
        row = t.rows[0]
        assert row[2] < row[1]  # kempe RSD below FF RSD


class TestNewAblations:
    def test_page_policy_shape(self):
        from repro.experiments import ablation_page_policy

        t = ablation_page_policy()
        assert t.column("hashed")[-1] < t.column("homed")[-1]

    def test_color_all_phases(self):
        from repro.experiments import ablation_color_all_phases

        t = ablation_color_all_phases(scale=0.05, inputs=("cnr",),
                                      num_threads=8, max_iterations=5)
        assert len(t.rows) == 1


class TestFormatting:
    def test_fmt_large_and_small_floats(self):
        out = format_table(["x"], [[123456.789], [0.00001234], [0.0]])
        assert "1.23e+05" in out
        assert "1.23e-05" in out

    def test_fmt_strings_passthrough(self):
        out = format_table(["x"], [["hello"]])
        assert "hello" in out
