"""Tests for the Sec.-V page-policy model, SOR, all-phase coloring, trace I/O."""

import json

import numpy as np
import pytest

from repro.coloring import greedy_coloring
from repro.community import parallel_louvain
from repro.machine.tilera import TILERA_NOC, page_policy_access_ns
from repro.parallel.engine import ExecutionTrace, TickMachine
from repro.solver import laplacian_system, multicolor_gauss_seidel


class TestPagePolicy:
    def test_local_is_cheapest(self):
        assert page_policy_access_ns("local") < page_policy_access_ns("hashed")

    def test_hashed_flat_in_contention(self):
        lo = page_policy_access_ns("hashed", num_accessing_tiles=1)
        hi = page_policy_access_ns("hashed", num_accessing_tiles=36)
        assert hi <= lo * 1.2

    def test_homed_saturates(self):
        lo = page_policy_access_ns("homed", num_accessing_tiles=1)
        hi = page_policy_access_ns("homed", num_accessing_tiles=36)
        assert hi > 2 * lo

    def test_hashed_wins_under_contention(self):
        # the paper's Sec. V finding: hashed is the right policy for the
        # shared arrays once many tiles access them
        for p in (8, 16, 36):
            assert (page_policy_access_ns("hashed", num_accessing_tiles=p)
                    < page_policy_access_ns("homed", num_accessing_tiles=p))

    def test_equal_when_uncontended(self):
        assert page_policy_access_ns("hashed", num_accessing_tiles=1) == pytest.approx(
            page_policy_access_ns("homed", num_accessing_tiles=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            page_policy_access_ns("striped")
        with pytest.raises(ValueError):
            page_policy_access_ns("hashed", num_accessing_tiles=0)
        with pytest.raises(ValueError):
            page_policy_access_ns("hashed", num_accessing_tiles=TILERA_NOC.num_tiles + 1)


class TestSOR:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.graph import grid_3d_graph

        return laplacian_system(grid_3d_graph(5, 5, 5, stencil=6), seed=0)

    def test_omega_one_is_gauss_seidel(self, system):
        coloring = greedy_coloring(system.graph)
        a = multicolor_gauss_seidel(system, coloring, tol=1e-8)
        b = multicolor_gauss_seidel(system, coloring, tol=1e-8, omega=1.0)
        assert np.allclose(a.x, b.x)
        assert a.sweeps == b.sweeps

    def test_over_relaxation_accelerates(self, system):
        coloring = greedy_coloring(system.graph)
        gs = multicolor_gauss_seidel(system, coloring, tol=1e-8)
        sor = multicolor_gauss_seidel(system, coloring, tol=1e-8, omega=1.3)
        assert sor.converged
        assert sor.sweeps <= gs.sweeps

    def test_sor_solution_correct(self, system):
        coloring = greedy_coloring(system.graph)
        res = multicolor_gauss_seidel(system, coloring, tol=1e-10, omega=1.4)
        expected = np.linalg.solve(np.asarray(system.matrix.todense()), system.rhs)
        assert np.allclose(res.x, expected, atol=1e-7)

    def test_omega_bounds(self, system):
        coloring = greedy_coloring(system.graph)
        for bad in (0.0, 2.0, -0.5):
            with pytest.raises(ValueError, match="omega"):
                multicolor_gauss_seidel(system, coloring, omega=bad)


class TestColorAllPhases:
    def test_quality_preserved(self, small_cnr):
        init = greedy_coloring(small_cnr)
        default = parallel_louvain(small_cnr, num_threads=8, coloring=init)
        all_ph = parallel_louvain(small_cnr, num_threads=8, coloring=init,
                                  color_all_phases=True)
        assert abs(all_ph.modularity - default.modularity) < 0.1
        assert all_ph.mode == "colored-all-phases"

    def test_trace_includes_recoloring_cost(self, small_cnr):
        init = greedy_coloring(small_cnr)
        default = parallel_louvain(small_cnr, num_threads=8, coloring=init)
        all_ph = parallel_louvain(small_cnr, num_threads=8, coloring=init,
                                  color_all_phases=True)
        # re-coloring later phases adds atomics the default run never pays
        assert all_ph.trace.total_atomics > default.trace.total_atomics


class TestTraceSerialization:
    def _trace(self):
        m = TickMachine(3, algorithm="demo")
        r = m.new_superstep()
        m.charge(r, 0, 10)
        m.charge(r, 1, 5)
        r.atomic_ops = 7
        r.shared_reads = 3
        r.conflicts = 1
        m.trace.add(r)
        m.charge_serial(42)
        return m.trace

    def test_roundtrip(self):
        t = self._trace()
        back = ExecutionTrace.from_dict(json.loads(json.dumps(t.to_dict())))
        assert back.num_threads == t.num_threads
        assert back.algorithm == t.algorithm
        assert back.total_work == t.total_work
        assert back.total_atomics == t.total_atomics
        assert back.total_conflicts == t.total_conflicts
        assert back.serial_work == t.serial_work
        assert back.supersteps[0].max_item_work == t.supersteps[0].max_item_work

    def test_pricing_invariant_under_roundtrip(self):
        from repro.machine import estimate_time, tilegx36

        t = self._trace()
        back = ExecutionTrace.from_dict(t.to_dict())
        assert estimate_time(back, tilegx36()).total_s == pytest.approx(
            estimate_time(t, tilegx36()).total_s)
