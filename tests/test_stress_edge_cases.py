"""Stress and edge-case tests: adversarial structures across the stack."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper,
    balance_coloring,
    color_and_balance,
    greedy_coloring,
    STRATEGIES,
)
from repro.graph import (
    complete_graph,
    empty_graph,
    from_edge_list,
    star_graph,
)
from repro.parallel import (
    parallel_greedy_ff,
    parallel_recoloring,
    parallel_scheduled_balance,
    parallel_shuffle_balance,
)

GUIDED = [n for n, s in STRATEGIES.items() if s.category == "guided"]


@pytest.fixture
def disconnected():
    """Two triangles, an isolated path, and isolated vertices."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7), (7, 8)]
    return from_edge_list(edges, num_vertices=12)


class TestAdversarialGraphs:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_disconnected(self, disconnected, strategy):
        out = color_and_balance(disconnected, strategy, seed=0)
        assert_proper(disconnected, out)

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_complete_graph(self, strategy):
        g = complete_graph(7)
        out = color_and_balance(g, strategy, seed=0)
        assert_proper(g, out)
        assert out.num_colors >= 7

    @pytest.mark.parametrize("strategy", sorted(GUIDED))
    def test_star(self, strategy):
        g = star_graph(20)
        out = color_and_balance(g, strategy, seed=0)
        assert_proper(g, out)

    @pytest.mark.parametrize("strategy", sorted(GUIDED))
    def test_all_isolated(self, strategy):
        g = empty_graph(10)
        out = color_and_balance(g, strategy, seed=0)
        assert_proper(g, out)


class TestExtremeThreadCounts:
    def test_more_threads_than_vertices(self, petersen):
        init = greedy_coloring(petersen)
        for algo in (parallel_shuffle_balance, parallel_scheduled_balance,
                     parallel_recoloring):
            out = algo(petersen, init, num_threads=100)
            assert_proper(petersen, out)
        out = parallel_greedy_ff(petersen, num_threads=100)
        assert_proper(petersen, out)

    def test_clique_under_max_concurrency(self):
        # every tick of a clique coloring conflicts maximally
        g = complete_graph(12)
        c = parallel_greedy_ff(g, num_threads=12)
        assert_proper(g, c)
        assert c.num_colors == 12
        assert c.meta["conflicts"] > 0

    def test_star_vertex_centric_balance(self):
        # star: FF gives classes {hub}, {leaves}; heavily unbalanceable
        g = star_graph(30)
        init = greedy_coloring(g)
        out = parallel_shuffle_balance(g, init, num_threads=8)
        assert_proper(g, out)
        assert out.num_colors == 2  # nothing movable, color count kept


class TestDegenerateColorings:
    def test_balance_single_class(self):
        from repro.coloring import Coloring

        g = empty_graph(6)
        init = Coloring(np.zeros(6, dtype=np.int64), 1)
        for strategy in GUIDED:
            out = balance_coloring(g, init, strategy)
            assert out.num_vertices == 6

    def test_balance_alread_perfect(self, petersen):
        init = greedy_coloring(petersen)
        # petersen FF: 3 colors over 10 vertices; near-balanced already
        out = balance_coloring(petersen, init, "vff")
        assert_proper(petersen, out)

    def test_sched_with_no_underfull_capacity(self):
        # 2 classes of sizes 3 and 1: gamma=2, surplus 1, capacity 1
        g = star_graph(4)
        init = greedy_coloring(g)
        out = parallel_scheduled_balance(g, init, num_threads=4)
        assert_proper(g, out)


class TestCommunityEdgeCases:
    def test_louvain_disconnected(self, disconnected):
        from repro.community import louvain

        res = louvain(disconnected)
        # triangles and the path resolve into separate communities; the
        # isolated vertices stay alone
        assert res.num_communities >= 5

    def test_louvain_complete_graph_single_community(self):
        from repro.community import louvain

        res = louvain(complete_graph(8))
        assert res.num_communities == 1

    def test_parallel_louvain_star(self):
        from repro.community import parallel_louvain

        g = star_graph(10)
        res = parallel_louvain(g, num_threads=4, coloring=greedy_coloring(g))
        assert res.num_communities >= 1

    def test_modularity_empty_edges(self):
        from repro.community import modularity

        g = empty_graph(5)
        assert modularity(g, np.arange(5)) == 0.0


class TestMachineEdgeCases:
    def test_empty_trace_costs_nothing(self):
        from repro.machine import estimate_time, tilegx36
        from repro.parallel.engine import ExecutionTrace

        bd = estimate_time(ExecutionTrace(num_threads=4), tilegx36())
        assert bd.total_s == 0.0

    def test_trace_from_noop_balancing(self):
        from repro.machine import estimate_time, tilegx36

        g = complete_graph(5)  # all classes size 1: nothing to balance
        init = greedy_coloring(g)
        out = parallel_shuffle_balance(g, init, num_threads=4)
        bd = estimate_time(out.meta["trace"], tilegx36())
        assert bd.total_s >= 0.0
