"""Bipartite optimistic distance-2 partial coloring subsystem.

Covers the BipartiteGraph view invariants, the D2 kernel dispatchers, the
three optimistic engines (sequential / superstep / mp) and their parity
and properness guarantees, the one-sided balance drain, and strategy /
serve reachability of the d2* registry rows.
"""

import numpy as np
import pytest

from repro import kernels
from repro.bipartite import (
    BipartiteGraph,
    PartialD2Coloring,
    assert_partial_d2_proper,
    balance_partial_d2,
    is_partial_d2_proper,
    mp_partial_d2,
    optimistic_partial_d2,
    partial_d2_sequential,
    replay_partial_rounds,
)
from repro.coloring import color_and_balance
from repro.coloring.balance import relative_std_dev
from repro.coloring.distance2 import assert_distance2_proper, greedy_distance2
from repro.graph import (
    erdos_renyi_graph,
    jacobian_band_pattern,
    load_dataset,
    random_sparse_pattern,
)
from repro.obs import Recorder
from repro.run import execute
from repro.run.config import RunConfig


MODES_ALL = ("sequential", "superstep", "mp")


def random_pattern(nr, nc, nnz, seed):
    rng = np.random.default_rng(seed)
    return BipartiteGraph.from_matrix_pattern(
        rng.integers(0, nr, nnz), rng.integers(0, nc, nnz),
        num_rows=nr, num_cols=nc)


# ----------------------------------------------------------------------
# BipartiteGraph view
# ----------------------------------------------------------------------
class TestBipartiteGraph:
    def test_from_matrix_pattern_shape(self):
        bip = BipartiteGraph.from_matrix_pattern([0, 1, 2], [0, 0, 1])
        assert bip.num_rows == 3 and bip.num_cols == 2
        assert bip.num_nonzeros == 3
        assert bip.cols_of_row(0).tolist() == [0]
        assert bip.rows_of_col(0).tolist() == [0, 1]

    def test_duplicates_collapse(self):
        bip = BipartiteGraph.from_matrix_pattern([0, 0, 1], [1, 1, 0],
                                                 num_rows=2, num_cols=2)
        assert bip.num_nonzeros == 2

    def test_index_validation(self):
        with pytest.raises(ValueError, match="exceeds"):
            BipartiteGraph.from_matrix_pattern([0, 5], [0, 0], num_rows=2)
        with pytest.raises(ValueError, match="non-negative"):
            BipartiteGraph.from_matrix_pattern([-1], [0])
        with pytest.raises(ValueError, match="length"):
            BipartiteGraph.from_matrix_pattern([0, 1], [0])

    def test_rejects_non_bipartite_incidence(self):
        g = erdos_renyi_graph(20, 0.3, seed=0)
        with pytest.raises(ValueError, match="not bipartite"):
            BipartiteGraph.from_incidence(g, 10)

    def test_d2_neighbors_match_bruteforce(self):
        bip = random_pattern(40, 12, 160, seed=3)
        # brute force: two rows are D2 neighbors iff they share a column
        col_sets = [set(bip.cols_of_row(r).tolist()) for r in range(40)]
        for r, nbrs in bip.iter_d2_neighborhoods():
            expected = {s for s in range(40)
                        if s != r and col_sets[r] & col_sets[s]}
            assert set(nbrs.tolist()) == expected

    def test_d2_degree_counts_two_hop_slots(self):
        bip = random_pattern(30, 8, 90, seed=4)
        for r in range(30):
            cols = bip.cols_of_row(r)
            assert bip.d2_degree(r) == int(
                sum(bip.rows_of_col(int(c)).shape[0] for c in cols))

    def test_square_cover_encodes_distance2(self):
        g = erdos_renyi_graph(50, 0.08, seed=1)
        cover = BipartiteGraph.square_cover(g)
        assert cover.num_rows == cover.num_cols == 50
        for r in range(50):
            expected = set(g.neighbors(r).tolist()) | {
                int(w) for v in g.neighbors(r) for w in g.neighbors(int(v))}
            expected.discard(r)
            assert set(cover.d2_neighbors(r).tolist()) == expected


# ----------------------------------------------------------------------
# PartialD2Coloring invariants and verifiers
# ----------------------------------------------------------------------
class TestPartialColoring:
    def test_uncolored_rows_are_legal(self):
        pc = PartialD2Coloring(np.array([0, -1, 1]), 2)
        assert pc.num_colored == 2 and pc.num_rows == 3
        assert pc.class_sizes().tolist() == [1, 1]

    def test_out_of_range_colors_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            PartialD2Coloring(np.array([0, 2]), 2)
        with pytest.raises(ValueError, match=">= -1"):
            PartialD2Coloring(np.array([-2]), 1)

    def test_partial_properness_ignores_uncolored(self):
        bip = BipartiteGraph.from_matrix_pattern([0, 1, 2], [0, 0, 0])
        assert is_partial_d2_proper(bip, np.array([0, -1, 1]))
        assert not is_partial_d2_proper(bip, np.array([0, -1, 0]))

    def test_require_total_flags_uncolored(self):
        bip = BipartiteGraph.from_matrix_pattern([0, 1], [0, 1])
        assert_partial_d2_proper(bip, np.array([0, -1]))
        with pytest.raises(AssertionError, match="uncolored"):
            assert_partial_d2_proper(bip, np.array([0, -1]),
                                     require_total=True)

    def test_assert_names_violating_column(self):
        bip = BipartiteGraph.from_matrix_pattern([0, 1, 0, 1], [0, 0, 1, 1])
        with pytest.raises(AssertionError, match="column 0"):
            assert_partial_d2_proper(bip, np.array([3, 3]))


# ----------------------------------------------------------------------
# D2 kernels: reference/vectorized parity
# ----------------------------------------------------------------------
class TestD2Kernels:
    @pytest.mark.parametrize("seed", range(4))
    def test_sweep_backend_parity(self, seed):
        bip = random_pattern(120, 30, 500, seed=seed)
        rng = np.random.default_rng(seed + 100)
        work = rng.permutation(120).astype(np.int64)[:80]
        base = np.full(120, -1, dtype=np.int64)
        base[rng.integers(0, 120, 40)] = rng.integers(0, 10, 40)
        ref = kernels.d2_sweep(bip.incidence, 120, work, base,
                               backend="reference")
        vec = kernels.d2_sweep(bip.incidence, 120, work, base,
                               backend="vectorized")
        assert np.array_equal(ref, vec)

    @pytest.mark.parametrize("seed", range(4))
    def test_conflicts_backend_parity(self, seed):
        bip = random_pattern(120, 30, 500, seed=seed)
        rng = np.random.default_rng(seed + 200)
        colors = rng.integers(-1, 8, 120).astype(np.int64)
        work = np.unique(rng.integers(0, 120, 60)).astype(np.int64)
        ref = kernels.d2_conflicts(bip.incidence, 120, colors, work,
                                   backend="reference")
        vec = kernels.d2_conflicts(bip.incidence, 120, colors, work,
                                   backend="vectorized")
        assert np.array_equal(ref, vec)

    def test_sweep_defaults_color_all_rows(self):
        bip = random_pattern(60, 15, 200, seed=7)
        colors = kernels.d2_sweep(bip.incidence, 60)
        assert colors.shape == (60,) and colors.min() >= 0
        assert is_partial_d2_proper(bip, colors)

    def test_num_rows_validated(self):
        bip = random_pattern(10, 5, 30, seed=0)
        with pytest.raises(ValueError, match="num_rows"):
            kernels.d2_sweep(bip.incidence, 0)
        with pytest.raises(ValueError, match="num_rows"):
            kernels.d2_conflicts(bip.incidence, 99,
                                 np.zeros(10, dtype=np.int64))


# ----------------------------------------------------------------------
# optimistic engines
# ----------------------------------------------------------------------
class TestOptimistic:
    def test_sequential_is_total_and_proper(self):
        bip = random_pattern(250, 50, 1200, seed=2)
        pc = partial_d2_sequential(bip)
        assert_partial_d2_proper(bip, pc, require_total=True)
        assert pc.num_colors == int(pc.colors.max()) + 1

    def test_sequential_matches_greedy_distance2_on_cover(self):
        g = erdos_renyi_graph(150, 0.05, seed=5)
        cover = BipartiteGraph.square_cover(g)
        pc = partial_d2_sequential(cover)
        ref = greedy_distance2(g, choice="ff", ordering="natural")
        assert np.array_equal(pc.colors, ref.colors)

    def test_one_thread_superstep_equals_sequential(self):
        bip = random_pattern(200, 40, 900, seed=6)
        seq = partial_d2_sequential(bip)
        one = optimistic_partial_d2(bip, num_threads=1)
        assert np.array_equal(one.colors, seq.colors)
        assert one.meta["rounds"] == 1 and one.meta["conflicts"] == 0

    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_multithread_is_total_and_proper(self, threads):
        bip = random_pattern(300, 50, 1500, seed=8)
        pc = optimistic_partial_d2(bip, num_threads=threads)
        assert_partial_d2_proper(bip, pc, require_total=True)
        assert pc.meta["trace"] is not None
        assert pc.meta["supersteps"] >= 1

    def test_conflicts_grow_with_threads(self):
        bip = random_pattern(300, 30, 1800, seed=9)
        c2 = optimistic_partial_d2(bip, num_threads=2).meta["conflicts"]
        c16 = optimistic_partial_d2(bip, num_threads=16).meta["conflicts"]
        assert c16 >= c2

    def test_recorder_off_bit_parity(self):
        bip = random_pattern(150, 30, 700, seed=10)
        rec = Recorder()
        with_rec = optimistic_partial_d2(bip, num_threads=4, recorder=rec)
        no_rec = optimistic_partial_d2(bip, num_threads=4)
        assert np.array_equal(with_rec.colors, no_rec.colors)
        kinds = {e["kind"] for e in rec.events}
        assert {"superstep", "trace_summary", "partial_coloring"} <= kinds

    def test_stick_fault_trips_watchdog(self):
        bip = random_pattern(120, 25, 500, seed=11)
        pc = optimistic_partial_d2(bip, num_threads=4,
                                   fault_plan="stick@r0:10",
                                   watchdog_patience=3)
        assert_partial_d2_proper(bip, pc, require_total=True)
        assert pc.meta["watchdog_round"] >= 1

    def test_explicit_order_permutation_validated(self):
        bip = random_pattern(20, 5, 60, seed=12)
        with pytest.raises(ValueError, match="permutation"):
            partial_d2_sequential(bip, order=np.zeros(20, dtype=np.int64))

    def test_greedy_distance2_recorder_off_parity(self):
        g = erdos_renyi_graph(100, 0.06, seed=13)
        rec = Recorder()
        with_rec = greedy_distance2(g, choice="lu", recorder=rec)
        no_rec = greedy_distance2(g, choice="lu")
        assert np.array_equal(with_rec.colors, no_rec.colors)
        assert any(e["kind"] == "coloring" for e in rec.events)


# ----------------------------------------------------------------------
# mp engine
# ----------------------------------------------------------------------
class TestMpPartialD2:
    def test_one_worker_equals_sequential(self):
        bip = random_pattern(150, 30, 700, seed=14)
        seq = partial_d2_sequential(bip)
        one = mp_partial_d2(bip, num_workers=1)
        assert np.array_equal(one.colors, seq.colors)

    def test_workers_total_proper_and_replay_parity(self):
        bip = random_pattern(250, 50, 1400, seed=15)
        pc = mp_partial_d2(bip, num_workers=3)
        assert_partial_d2_proper(bip, pc, require_total=True)
        replay, rounds = replay_partial_rounds(bip, 3)
        assert np.array_equal(replay.colors, pc.colors)
        assert len(rounds) == pc.meta["rounds"]

    def test_transports_bit_identical(self):
        from repro.shm import shm_available

        if not shm_available():
            pytest.skip("shared memory unusable here")
        bip = random_pattern(200, 40, 1000, seed=16)
        a = mp_partial_d2(bip, num_workers=3, shm=True)
        b = mp_partial_d2(bip, num_workers=3, shm=False)
        assert np.array_equal(a.colors, b.colors)
        assert a.meta["transport"] == "shm" and b.meta["transport"] == "pickle"

    def test_kill_fault_recovers_bit_identically(self):
        bip = random_pattern(200, 40, 1000, seed=17)
        clean = mp_partial_d2(bip, num_workers=3)
        faulty = mp_partial_d2(bip, num_workers=3, fault_plan="kill@r0.w1",
                               round_timeout=10.0)
        assert np.array_equal(faulty.colors, clean.colors)
        assert faulty.meta["faults"]["recovered"] >= 1


# ----------------------------------------------------------------------
# one-sided balance drain
# ----------------------------------------------------------------------
class TestBalance:
    def test_drain_improves_rsd_without_new_colors(self):
        bip = random_pattern(600, 120, 3000, seed=18)
        base = partial_d2_sequential(bip)
        bal = balance_partial_d2(bip, base)
        assert_partial_d2_proper(bip, bal, require_total=True)
        assert bal.num_colors == base.num_colors
        assert bal.num_colored == base.num_colored
        assert (relative_std_dev(bal.class_sizes())
                < relative_std_dev(base.class_sizes()))

    def test_drain_on_generated_patterns(self):
        for g, nr in ((jacobian_band_pattern(800, 80, 5, seed=0), 800),
                      (random_sparse_pattern(700, 90, 5, seed=1), 700)):
            bip = BipartiteGraph.from_incidence(g, nr)
            base = partial_d2_sequential(bip)
            bal = balance_partial_d2(bip, base)
            assert_partial_d2_proper(bip, bal, require_total=True)
            assert bal.num_colors == base.num_colors
            assert (relative_std_dev(bal.class_sizes())
                    <= relative_std_dev(base.class_sizes()))

    def test_drain_preserves_uncolored_rows(self):
        bip = random_pattern(100, 20, 400, seed=19)
        colors = partial_d2_sequential(bip).colors.copy()
        colors[::3] = -1
        pc = PartialD2Coloring(colors, int(colors.max()) + 1)
        bal = balance_partial_d2(bip, pc)
        assert np.array_equal(bal.colors < 0, colors < 0)
        assert_partial_d2_proper(bip, bal)

    def test_recorder_off_bit_parity(self):
        bip = random_pattern(200, 40, 900, seed=20)
        base = partial_d2_sequential(bip)
        rec = Recorder()
        with_rec = balance_partial_d2(bip, base, recorder=rec)
        no_rec = balance_partial_d2(bip, base)
        assert np.array_equal(with_rec.colors, no_rec.colors)
        assert any(e["kind"] == "drain_round" for e in rec.events)
        assert any(e["kind"] == "balance" for e in rec.events)


# ----------------------------------------------------------------------
# registry / execute / serve reachability
# ----------------------------------------------------------------------
class TestStrategyRows:
    def test_registry_rows_and_modes(self):
        from repro.coloring.strategies import STRATEGIES

        assert STRATEGIES["d2"].modes == ("sequential",)
        assert STRATEGIES["d2-optimistic"].modes == MODES_ALL
        assert STRATEGIES["d2-balanced"].modes == MODES_ALL

    def test_execute_all_modes_d2_proper(self):
        g = erdos_renyi_graph(200, 0.04, seed=21)
        for strat in ("d2-optimistic", "d2-balanced"):
            for mode, threads in (("sequential", 1), ("superstep", 4),
                                  ("mp", 2)):
                r = execute(g, RunConfig(strategy=strat, mode=mode,
                                         threads=threads, seed=0))
                assert_distance2_proper(g, r.coloring)
                if mode == "superstep":
                    assert r.trace is not None
                    assert r.trace.summary()["supersteps"] >= 1

    def test_execute_d2_sequential_matches_greedy_distance2(self):
        g = erdos_renyi_graph(150, 0.05, seed=22)
        r = execute(g, RunConfig(strategy="d2", seed=0))
        ref = greedy_distance2(g, choice="ff", ordering="natural")
        assert np.array_equal(r.coloring.colors, ref.colors)
        r2 = execute(g, RunConfig(strategy="d2-optimistic", seed=0))
        assert np.array_equal(r2.coloring.colors, ref.colors)

    def test_balanced_improves_rsd_over_optimistic(self):
        for name in ("jacband", "jacrand"):
            g = load_dataset(name, scale=0.03, seed=0)
            plain = execute(g, RunConfig(strategy="d2-optimistic",
                                         mode="superstep", threads=4, seed=0))
            bal = execute(g, RunConfig(strategy="d2-balanced",
                                       mode="superstep", threads=4, seed=0))
            assert bal.coloring.num_colors == plain.coloring.num_colors
            assert bal.balance.rsd_percent < plain.balance.rsd_percent

    def test_color_and_balance_front_door(self):
        g = erdos_renyi_graph(120, 0.06, seed=23)
        for strat in ("d2", "d2-optimistic", "d2-balanced"):
            c = color_and_balance(g, strat)
            assert_distance2_proper(g, c)
        lu = color_and_balance(g, "d2", choice="lu")
        assert_distance2_proper(g, lu)

    def test_serve_round_trip_on_bipartite_dataset(self):
        from repro.serve import ColoringService
        from repro.serve.api import dispatch

        svc = ColoringService()
        status, reply = dispatch(svc, "POST", "/submit", {
            "input": "jacband", "scale": 0.02, "seed": 0,
            "config": {"strategy": "d2-balanced", "mode": "superstep",
                       "threads": 4, "seed": 0}})
        assert status == 202
        svc.process()
        status, result = dispatch(svc, "GET", f"/result/{reply['job_id']}")
        assert status == 200 and result["status"] == "done"
        assert result["strategy"] == "d2-balanced"
        assert result["num_colors"] >= 1

    def test_dataset_rows_are_bipartite_incidence(self):
        for name in ("jacband", "jacrand"):
            g = load_dataset(name, scale=0.02, seed=0)
            # rows-first layout: every row's neighbors are columns (ids
            # above its own), every column's neighbors are rows (below its
            # own) — so the boundary is the first vertex whose smallest
            # neighbor precedes it
            nr = next(v for v in range(g.num_vertices)
                      if g.indptr[v + 1] > g.indptr[v]
                      and g.indices[g.indptr[v]] < v)
            bip = BipartiteGraph.from_incidence(g, nr)
            assert bip.num_rows > bip.num_cols
