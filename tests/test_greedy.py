"""Tests for sequential Greedy coloring (Algorithm 1 variants)."""

import numpy as np
import pytest

from repro.coloring import assert_proper, greedy_coloring, is_proper
from repro.graph import cycle_graph, erdos_renyi_graph
from repro.graph.properties import core_number


class TestFirstFit:
    def test_path_two_colors(self, path10):
        c = greedy_coloring(path10)
        assert c.num_colors == 2
        assert_proper(path10, c)

    def test_even_cycle_two_colors(self):
        g = cycle_graph(8)
        assert greedy_coloring(g).num_colors == 2

    def test_odd_cycle_three_colors(self, cycle5):
        assert greedy_coloring(cycle5).num_colors == 3

    def test_clique_exact(self, k5):
        c = greedy_coloring(k5)
        assert c.num_colors == 5
        assert_proper(k5, c)

    def test_star_two_colors(self, star8):
        assert greedy_coloring(star8).num_colors == 2

    def test_delta_plus_one_bound_any_order(self, random_graph):
        for ordering in ("natural", "random", "largest_first"):
            c = greedy_coloring(random_graph, ordering=ordering, seed=1)
            assert c.num_colors <= random_graph.max_degree + 1
            assert_proper(random_graph, c)

    def test_core_bound_with_smallest_last(self):
        g = erdos_renyi_graph(300, 0.04, seed=2)
        c = greedy_coloring(g, ordering="smallest_last")
        assert c.num_colors <= core_number(g) + 1

    def test_empty_graph(self):
        from repro.graph import empty_graph

        c = greedy_coloring(empty_graph(0))
        assert c.num_colors == 0
        assert c.num_vertices == 0

    def test_isolated_vertices_one_color(self):
        from repro.graph import empty_graph

        c = greedy_coloring(empty_graph(5))
        assert c.num_colors == 1

    def test_explicit_ordering(self, path10):
        order = np.arange(10)[::-1]
        c = greedy_coloring(path10, ordering=order)
        assert_proper(path10, c)

    def test_bad_explicit_ordering(self, path10):
        with pytest.raises(ValueError, match="permutation"):
            greedy_coloring(path10, ordering=np.array([0, 0, 1, 2, 3, 4, 5, 6, 7, 8]))

    def test_strategy_label(self, path10):
        assert greedy_coloring(path10).strategy == "greedy-ff"

    def test_ff_is_deterministic(self, random_graph):
        a = greedy_coloring(random_graph)
        b = greedy_coloring(random_graph)
        assert np.array_equal(a.colors, b.colors)


class TestLeastUsed:
    def test_proper(self, random_graph):
        c = greedy_coloring(random_graph, choice="lu")
        assert_proper(random_graph, c)

    def test_no_more_than_delta_plus_one(self, random_graph):
        c = greedy_coloring(random_graph, choice="lu")
        assert c.num_colors <= random_graph.max_degree + 1

    def test_at_least_as_many_colors_as_ff(self, small_cnr):
        ff = greedy_coloring(small_cnr)
        lu = greedy_coloring(small_cnr, choice="lu")
        assert lu.num_colors >= ff.num_colors

    def test_balances_better_than_ff(self, small_cnr):
        from repro.coloring import balance_report

        ff = balance_report(greedy_coloring(small_cnr))
        lu = balance_report(greedy_coloring(small_cnr, choice="lu"))
        assert lu.rsd_percent < ff.rsd_percent

    def test_clique(self, k5):
        c = greedy_coloring(k5, choice="lu")
        assert c.num_colors == 5


class TestRandomChoice:
    def test_proper(self, random_graph):
        c = greedy_coloring(random_graph, choice="random", seed=0)
        assert_proper(random_graph, c)

    def test_within_default_palette(self, random_graph):
        c = greedy_coloring(random_graph, choice="random", seed=0)
        assert c.num_colors <= random_graph.max_degree + 1

    def test_deterministic_by_seed(self, random_graph):
        a = greedy_coloring(random_graph, choice="random", seed=9)
        b = greedy_coloring(random_graph, choice="random", seed=9)
        assert np.array_equal(a.colors, b.colors)

    def test_tight_palette_overflow_fallback(self, k5):
        # B=2 on K5: impossible within palette, must overflow but stay proper
        c = greedy_coloring(k5, choice="random", seed=0, palette_bound=2)
        assert is_proper(k5, c)
        assert c.num_colors >= 5

    def test_palette_bound_validation(self, k5):
        with pytest.raises(ValueError):
            greedy_coloring(k5, choice="random", palette_bound=0)

    def test_uses_more_colors_than_ff(self, small_cnr):
        ff = greedy_coloring(small_cnr)
        rnd = greedy_coloring(small_cnr, choice="random", seed=0)
        assert rnd.num_colors >= ff.num_colors


class TestArguments:
    def test_bad_choice(self, path10):
        with pytest.raises(ValueError, match="choice"):
            greedy_coloring(path10, choice="smallest")
